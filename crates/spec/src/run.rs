//! Executing a compiled scenario: the [`Runner`] and its
//! [`ScenarioReport`].
//!
//! A pipeline scenario collects its sink stage on the chosen
//! [`Executor`] and reports rows plus the run's merged shuffle counters;
//! a service scenario stands up the declared server (fixed-pool or the
//! elastic sharded tier), replays the declared trace in virtual time,
//! and reports one row per response plus the server's ledger. Both paths
//! are deterministic in `(spec, executor, seeds)` — which is what the
//! spec↔Rust equivalence suite and the chaos-vs-clean law lean on.
//!
//! Chaos placement follows the engine's conventions: a `[fault]` section
//! rides a `cluster:N` pipeline executor as its *transport-only* plan
//! (kills don't apply to a collect), while the sharded tier takes the
//! full plan — kills, revivals and all. [`RunOptions::chaos_seed`]
//! reseeds the plan, the `PEACHY_CHAOS_SEED` convention of the CI chaos
//! jobs.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use peachy_cluster::{Executor, FaultPlan, TickBackoff};
use peachy_data::iris::iris;
use peachy_data::split::train_test_split;
use peachy_data::LabeledDataset;
use peachy_dataflow::ShuffleStats;
use peachy_ensemble::nn::{DenseNet, NetConfig, TrainConfig};
use peachy_kmeans::init::kmeans_plus_plus;
use peachy_serve::{
    keyed_query_trace, query_trace, EnsembleService, KmeansAssignService, KnnService, ServeConfig,
    ServeError, Server, ServerStats, ShardConfig, ShardedKnnService, ShardedServer,
};

use crate::compile::{compile, make_blobs, Node};
use crate::parse::SpecError;
use crate::spec::{
    parse_scenario, DataSpec, ScenarioSpec, ServiceKind, ServiceSpec, SinkSpec, TraceSpec,
};
use crate::value::{Row, Value};

/// How to execute a scenario.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The backend (pipelines collect on it; servers batch onto it).
    pub executor: Executor,
    /// Reseed the spec's `[fault]` plan (the `PEACHY_CHAOS_SEED`
    /// convention); `None` keeps the seed written in the spec.
    pub chaos_seed: Option<u64>,
    /// Apply the `[fault]` section at all. `false` runs the identical
    /// scenario fault-free — the clean half of the chaos-equals-clean law.
    pub apply_fault: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            executor: Executor::Seq,
            chaos_seed: None,
            apply_fault: true,
        }
    }
}

impl RunOptions {
    /// Run on `executor` with spec faults applied.
    pub fn on(executor: Executor) -> Self {
        Self {
            executor,
            ..Self::default()
        }
    }
}

/// The backend-invariant dataflow counters a scenario reports (the
/// shuffle family of `CommStats`; scatter/gather traffic is backend
/// shaped and deliberately excluded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Records through shuffle boundaries.
    pub records: u64,
    /// Encoded bytes through shuffle boundaries. Deterministic, but
    /// measured over [`Value`]-encoded rows — compare spec runs to spec
    /// runs, not to typed Rust twins.
    pub bytes: u64,
    /// Shuffle boundaries executed.
    pub shuffles: u64,
    /// Shuffle boundaries the optimizer elided.
    pub shuffles_elided: u64,
    /// Partitions spilled by byte-budgeted stores.
    pub spills: u64,
    /// Encoded bytes written to spill files.
    pub spill_bytes: u64,
    /// Encoded bytes replayed from spill files.
    pub unspill_bytes: u64,
    /// High-water mark of bytes materialized or decoded at once by
    /// budgeted stores (the streaming-execution meter; 0 when nothing
    /// charged it).
    pub peak_resident_bytes: u64,
}

impl Counters {
    fn from_stats(stats: &ShuffleStats) -> Self {
        Self {
            records: stats.records(),
            bytes: stats.bytes(),
            shuffles: stats.shuffles(),
            shuffles_elided: stats.shuffles_elided(),
            spills: stats.spills(),
            spill_bytes: stats.spill_bytes(),
            unspill_bytes: stats.unspill_bytes(),
            peak_resident_bytes: stats.peak_resident_bytes(),
        }
    }
}

/// The server-side ledger of a service scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests offered.
    pub submitted: u64,
    /// Requests turned away at admission.
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests failed after retries.
    pub failed: u64,
    /// Requests re-dispatched after a fault.
    pub retried: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Shard-map epochs (elastic tier).
    pub epochs: u64,
    /// Shards transferred by resharding.
    pub shards_moved: u64,
    /// Shards rebuilt after a kill.
    pub shards_rebuilt: u64,
    /// Requests replayed after a rank death.
    pub replayed: u64,
    /// Virtual ticks spent in retry backoff.
    pub backoff_ticks: u64,
    /// Latency percentiles in virtual ticks.
    pub p50: Option<u64>,
    /// 95th percentile.
    pub p95: Option<u64>,
    /// 99th percentile.
    pub p99: Option<u64>,
}

impl ServeCounters {
    fn from_stats(s: &ServerStats) -> Self {
        Self {
            submitted: s.submitted(),
            rejected: s.rejected(),
            completed: s.completed(),
            failed: s.failed(),
            retried: s.retried(),
            batches: s.batches(),
            epochs: s.epochs(),
            shards_moved: s.shards_moved(),
            shards_rebuilt: s.shards_rebuilt(),
            replayed: s.replayed(),
            backoff_ticks: s.backoff_ticks(),
            p50: s.p50(),
            p95: s.p95(),
            p99: s.p99(),
        }
    }
}

/// What a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// `[scenario] name`.
    pub name: String,
    /// Column names of `rows`.
    pub columns: Vec<String>,
    /// The materialized output (sink rows, or one row per response).
    pub rows: Vec<Row>,
    /// Dataflow counters (zero for pure service scenarios).
    pub counters: Counters,
    /// Server ledger, for service scenarios.
    pub serve: Option<ServeCounters>,
    /// The optimizer's plan rendering, when `[report] explain = true`.
    pub explain: Option<String>,
}

impl ScenarioReport {
    /// Render rows as text: header line, then one comma-joined line per
    /// row — the golden-file format.
    pub fn render_rows(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// A loaded scenario, ready to run any number of times.
pub struct Runner {
    spec: ScenarioSpec,
    /// Directory golden paths resolve against (the spec file's parent).
    base: Option<PathBuf>,
}

impl Runner {
    /// Parse and validate `.peachy` text. Not the `FromStr` trait:
    /// callers shouldn't need a trait import for the primary entry point.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<Self, SpecError> {
        Ok(Self {
            spec: parse_scenario(text)?,
            base: None,
        })
    }

    /// Load, parse and validate a `.peachy` file; golden paths resolve
    /// relative to it.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::at(0, "", format!("cannot read `{}`: {e}", path.display())))?;
        Ok(Self {
            spec: parse_scenario(&text)?,
            base: path.parent().map(Path::to_path_buf),
        })
    }

    /// The validated scenario.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Force `[report] explain` on (the runner's `--explain` flag).
    pub fn with_explain(mut self) -> Self {
        self.spec.explain = true;
        self
    }

    /// Execute under `opts`.
    pub fn run(&self, opts: &RunOptions) -> Result<ScenarioReport, SpecError> {
        match &self.spec.service {
            Some(service) => self.run_service(service, opts),
            None => self.run_pipeline(opts),
        }
    }

    /// The spec's fault plan under the run's seed override, or `None`
    /// when absent or disabled.
    fn fault_plan(&self, opts: &RunOptions) -> Option<FaultPlan> {
        let fault = self.spec.fault.as_ref()?;
        if !opts.apply_fault {
            return None;
        }
        let mut plan = fault.plan();
        if let Some(seed) = opts.chaos_seed {
            plan = plan.with_seed(seed);
        }
        Some(plan)
    }

    // -- pipelines ---------------------------------------------------------

    fn run_pipeline(&self, opts: &RunOptions) -> Result<ScenarioReport, SpecError> {
        let sink = self.spec.sink.as_ref().expect("validated: sink xor service");
        // Transport chaos rides a cluster backend; kills don't apply to a
        // one-shot collect, so only the transport half of the plan is used.
        let exec = match (&opts.executor, self.fault_plan(opts)) {
            (Executor::Cluster { ranks, .. }, Some(plan)) => Executor::Cluster {
                ranks: *ranks,
                plan: plan.transport_only(),
            },
            (exec, _) => exec.clone(),
        };

        let compiled = compile(&self.spec)?;
        let node = compiled.nodes.get(&sink.from).expect("validated reference");
        let columns = node.columns();
        let explain = if self.spec.explain {
            Some(match node {
                Node::Rows { ds, .. } => render_plans(&ds.explain_plans()),
                Node::Keyed { ds, .. } => render_plans(&ds.explain_plans()),
            })
        } else {
            None
        };
        let mut rows: Vec<Row> = match node {
            Node::Rows { ds, .. } => ds.collect_with(&exec),
            Node::Keyed { ds, .. } => ds
                .collect_with(&exec)
                .into_iter()
                .map(|(k, v)| std::iter::once(k).chain(v).collect())
                .collect(),
        };

        sort_rows(&mut rows, &columns, sink)?;
        if let Some(limit) = sink.limit {
            rows.truncate(limit);
        }
        if sink.count_only {
            rows = vec![vec![Value::Int(rows.len() as i64)]];
        }
        let report = ScenarioReport {
            name: self.spec.name.clone(),
            columns: if sink.count_only {
                vec!["count".to_string()]
            } else {
                columns
            },
            rows,
            counters: Counters::from_stats(&compiled.stats),
            serve: None,
            explain,
        };
        self.check_golden(sink, &report)?;
        Ok(report)
    }

    /// Compare (or, under `PEACHY_SPEC_BLESS=1`, write) the sink's golden
    /// file.
    fn check_golden(&self, sink: &SinkSpec, report: &ScenarioReport) -> Result<(), SpecError> {
        let Some(golden) = &sink.golden else {
            return Ok(());
        };
        let path = match &self.base {
            Some(base) => base.join(golden),
            None => PathBuf::from(golden),
        };
        let rendered = report.render_rows();
        if std::env::var_os("PEACHY_SPEC_BLESS").is_some() {
            return std::fs::write(&path, rendered).map_err(|e| {
                SpecError::at(sink.line, "sink", format!("cannot bless `{}`: {e}", path.display()))
            });
        }
        let expected = std::fs::read_to_string(&path).map_err(|e| {
            SpecError::at(
                sink.line,
                "sink",
                format!(
                    "cannot read golden `{}`: {e} (set PEACHY_SPEC_BLESS=1 to create it)",
                    path.display()
                ),
            )
        })?;
        if expected != rendered {
            let diff = first_difference(&expected, &rendered);
            return Err(SpecError::at(
                sink.line,
                "sink",
                format!("output differs from golden `{}`: {diff}", path.display()),
            ));
        }
        Ok(())
    }

    // -- services ----------------------------------------------------------

    fn run_service(&self, svc: &ServiceSpec, opts: &RunOptions) -> Result<ScenarioReport, SpecError> {
        // The service's data, and (for test_split traces) the held-out rows.
        let (data, test): (LabeledDataset, Option<LabeledDataset>) = match &svc.data {
            DataSpec::Iris { split: Some((frac, seed)) } => {
                let tt = train_test_split(&iris(), *frac, *seed);
                (tt.train, Some(tt.test))
            }
            DataSpec::Iris { split: None } => (iris(), None),
            DataSpec::Blobs(p) => (make_blobs(p), None),
        };

        let trace: Vec<(u64, Vec<f64>)> = match &svc.trace {
            TraceSpec::TestSplit => {
                let test = test.as_ref().expect("validated: test_split implies split");
                (0..test.len()).map(|i| (0, test.points.row(i).to_vec())).collect()
            }
            TraceSpec::Queries { pool, seed, ticks, rate } => {
                query_trace(*seed, *ticks, *rate, &make_blobs(pool).points)
            }
            // Keyed traces are built inside the sharded path below.
            TraceSpec::KeyedQueries { .. } => Vec::new(),
        };

        let serve_cfg = {
            let mut cfg = ServeConfig::default();
            if let Some(v) = svc.serve.capacity {
                cfg.capacity = v;
            }
            if let Some(v) = svc.serve.max_batch_size {
                cfg.max_batch_size = v;
            }
            if let Some(v) = svc.serve.max_wait {
                cfg.max_wait = v;
            }
            if let Some(v) = svc.serve.workers {
                cfg.workers = v;
            }
            cfg
        };

        let (responses, stats): (Vec<Result<u32, ServeError>>, Arc<ServerStats>) = match &svc.kind {
            ServiceKind::Knn => {
                let server = Server::start(
                    KnnService::new(data, svc.k),
                    opts.executor.clone(),
                    serve_cfg,
                );
                let responses = server.run_trace(trace);
                (responses, server.shutdown().stats)
            }
            ServiceKind::KmeansAssign { centroid_seed } => {
                let centroids = kmeans_plus_plus(&data.points, svc.k, *centroid_seed);
                let server = Server::start(
                    KmeansAssignService::new(centroids),
                    opts.executor.clone(),
                    serve_cfg,
                );
                let responses = server.run_trace(trace);
                (responses, server.shutdown().stats)
            }
            ServiceKind::Ensemble { hidden, epochs, train_seed } => {
                let config = NetConfig {
                    layers: vec![data.dims(), *hidden, data.classes as usize],
                };
                let tc = TrainConfig {
                    epochs: *epochs,
                    seed: *train_seed,
                    ..TrainConfig::default()
                };
                let mut net = DenseNet::new(&config, *train_seed);
                net.train(&data, &tc);
                let server = Server::start(
                    EnsembleService::new(net),
                    opts.executor.clone(),
                    serve_cfg,
                );
                let responses = server.run_trace(trace);
                (responses, server.shutdown().stats)
            }
            ServiceKind::KnnSharded => {
                let TraceSpec::KeyedQueries { pool, seed, ticks, rate } = &svc.trace else {
                    unreachable!("validated: knn_sharded implies keyed_queries");
                };
                let keyed = keyed_query_trace(*seed, *ticks, *rate, &make_blobs(pool).points);
                let mut cfg = ShardConfig::default();
                if let Some(v) = svc.shard.num_shards {
                    cfg.num_shards = v;
                }
                if let Some(v) = svc.shard.vnodes {
                    cfg.vnodes = v;
                }
                if let Some(v) = svc.shard.seed {
                    cfg.seed = v;
                }
                if let Some(v) = svc.shard.initial_ranks {
                    cfg.initial_ranks = v;
                }
                if let Some(v) = svc.shard.capacity {
                    cfg.capacity = v;
                }
                if let Some(v) = svc.shard.max_batch_size {
                    cfg.max_batch_size = v;
                }
                if let Some(v) = svc.shard.max_wait {
                    cfg.max_wait = v;
                }
                if let Some(v) = svc.shard.full_rebuild {
                    cfg.full_rebuild = v;
                }
                if let Some((base, jitter, seed)) = svc.backoff {
                    cfg.backoff = TickBackoff::linear(base, jitter, seed);
                }
                // The elastic tier takes the FULL plan: kills, revivals,
                // transport chaos — replay keeps the answers clean.
                cfg.plan = self.fault_plan(opts).unwrap_or_else(FaultPlan::none);
                cfg.scaling = svc.scaling.clone();
                let mut server = ShardedServer::start(
                    ShardedKnnService::new(data, svc.k),
                    opts.executor.clone(),
                    cfg,
                );
                let responses = server.run_trace(keyed);
                (responses, server.shutdown().stats)
            }
        };

        let rows: Vec<Row> = responses
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let out = match r {
                    Ok(label) => Value::Int(*label as i64),
                    Err(e) => Value::Str(e.to_string()),
                };
                vec![Value::Int(i as i64), out]
            })
            .collect();
        Ok(ScenarioReport {
            name: self.spec.name.clone(),
            columns: vec!["request".to_string(), "output".to_string()],
            rows,
            counters: Counters::default(),
            serve: Some(ServeCounters::from_stats(&stats)),
            explain: None,
        })
    }
}

/// Stable sort by the sink's keys (leftmost outermost), using the
/// [`Value::total_cmp`] total order.
fn sort_rows(rows: &mut [Row], columns: &[String], sink: &SinkSpec) -> Result<(), SpecError> {
    if sink.sort.is_empty() {
        return Ok(());
    }
    let mut keys = Vec::new();
    for (col, desc, line) in &sink.sort {
        let idx = columns.iter().position(|c| c == col).ok_or_else(|| {
            let known: Vec<&str> = columns.iter().map(String::as_str).collect();
            SpecError::at(
                *line,
                "sink",
                format!("sort column `{col}` is not in the output (columns: {})", known.join(", ")),
            )
            .with_hint_from(col, &known)
        })?;
        keys.push((idx, *desc));
    }
    rows.sort_by(|a, b| {
        for &(idx, desc) in &keys {
            let ord = a[idx].total_cmp(&b[idx]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

fn render_plans(report: &peachy_dataflow::PlanReport) -> String {
    format!(
        "naive plan:\n{}\noptimized plan:\n{}\nfused runs: {}  elided shuffles: {}  auto-cached: {}\n",
        report.naive, report.optimized, report.fused_runs, report.elided_shuffles, report.auto_cached
    )
}

/// `line N: got .. want ..` for golden mismatches.
fn first_difference(expected: &str, got: &str) -> String {
    let mut e = expected.lines();
    let mut g = got.lines();
    let mut line = 1;
    loop {
        match (e.next(), g.next()) {
            (Some(a), Some(b)) if a == b => line += 1,
            (Some(a), Some(b)) => return format!("first difference at line {line}: `{a}` vs `{b}`"),
            (Some(a), None) => return format!("output ends early at line {line} (golden has `{a}`)"),
            (None, Some(b)) => return format!("output has extra line {line}: `{b}`"),
            (None, None) => return "identical?".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_report_counts_shuffles() {
        let text = "\
[scenario]\nname = t\n[run]\npartitions = 2\n\
[source.rows]\nkind = inline\ncolumns = \"k, v\"\nrow = \"a, 1\"\nrow = \"a, 2\"\nrow = \"b, 5\"\n\
[stage.sums]\ninput = rows\nop = sum\nkey = k\ncol = v\n\
[sink]\nfrom = sums\nsort = \"k\"\n";
        let report = Runner::from_str(text).unwrap().run(&RunOptions::default()).unwrap();
        assert_eq!(report.columns, vec!["k", "v"]);
        assert_eq!(
            report.rows,
            vec![
                vec![Value::Str("a".into()), Value::Int(3)],
                vec![Value::Str("b".into()), Value::Int(5)],
            ]
        );
        assert_eq!(report.counters.shuffles, 1);
    }

    #[test]
    fn sink_count_and_limit() {
        let text = "\
[scenario]\nname = t\n\
[source.rows]\nkind = inline\ncolumns = \"n\"\nrow = \"3\"\nrow = \"1\"\nrow = \"2\"\n\
[sink]\nfrom = rows\nkind = count\n";
        let report = Runner::from_str(text).unwrap().run(&RunOptions::default()).unwrap();
        assert_eq!(report.rows, vec![vec![Value::Int(3)]]);

        let text = "\
[scenario]\nname = t\n\
[source.rows]\nkind = inline\ncolumns = \"n\"\nrow = \"3\"\nrow = \"1\"\nrow = \"2\"\n\
[sink]\nfrom = rows\nsort = \"n desc\"\nlimit = 2\n";
        let report = Runner::from_str(text).unwrap().run(&RunOptions::default()).unwrap();
        assert_eq!(report.rows, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
    }

    #[test]
    fn backends_agree_on_a_keyed_pipeline() {
        let text = "\
[scenario]\nname = t\n[run]\npartitions = 3\n\
[source.rows]\nkind = inline\ncolumns = \"k, v\"\nrow = \"a, 1\"\nrow = \"b, 2\"\nrow = \"a, 3\"\nrow = \"c, 4\"\nrow = \"b, 6\"\n\
[stage.counts]\ninput = rows\nop = count\nkey = k\n\
[sink]\nfrom = counts\nsort = \"k\"\n";
        let runner = Runner::from_str(text).unwrap();
        let seq = runner.run(&RunOptions::default()).unwrap();
        for exec in [Executor::rayon(4), Executor::cluster(3)] {
            let other = runner.run(&RunOptions::on(exec)).unwrap();
            assert_eq!(other.rows, seq.rows);
            assert_eq!(other.counters, seq.counters);
        }
    }

    #[test]
    fn explain_is_attached_on_request() {
        let text = "\
[scenario]\nname = t\n[report]\nexplain = true\n\
[source.rows]\nkind = inline\ncolumns = \"k\"\nrow = \"a\"\nrow = \"b\"\nrow = \"a\"\n\
[stage.counts]\ninput = rows\nop = count\nkey = k\n\
[sink]\nfrom = counts\nsort = \"k\"\n";
        let report = Runner::from_str(text).unwrap().run(&RunOptions::default()).unwrap();
        let explain = report.explain.expect("explain requested");
        assert!(explain.contains("naive plan"), "{explain}");
        assert!(explain.contains("optimized plan"), "{explain}");
    }

    #[test]
    fn knn_service_on_iris_answers_every_test_row() {
        let text = "\
[scenario]\nname = t\n\
[service]\nkind = knn\nk = 5\ndata = iris\nsplit = 0.7\nsplit_seed = 2023\n\
[serve]\ncapacity = 64\nmax_batch_size = 8\nmax_wait = 3\n\
[trace]\nkind = test_split\n";
        let report = Runner::from_str(text).unwrap().run(&RunOptions::default()).unwrap();
        let serve = report.serve.expect("service report");
        assert_eq!(serve.completed as usize, report.rows.len());
        assert!(report.rows.iter().all(|r| matches!(r[1], Value::Int(_))));
    }
}
