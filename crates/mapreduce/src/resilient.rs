//! Failure-aware MapReduce driver: the §2 engine on top of the
//! fault-tolerant task farm.
//!
//! The plain [`MapReduce`](crate::MapReduce) engine block-partitions map
//! tasks statically, so a dead rank takes its share of the input down with
//! it. This driver instead runs the **map phase as a self-scheduling task
//! farm** ([`peachy_cluster::task_farm`]): map tasks owned by a rank that
//! dies are reassigned to survivors, bounded by a [`RetryPolicy`], and the
//! manager degrades to serial execution if every worker is lost. The
//! group/reduce phase then runs on the manager over the farm's
//! task-indexed results, so the output table is **bit-identical to a
//! fault-free run** for deterministic map/reduce functions — the Spark
//! lineage-replay guarantee at teaching scale.

use std::collections::BTreeMap;

use peachy_cluster::{task_farm, ByteSized, Cluster, FaultPlan, RankError, RetryPolicy};

/// What a resilient run produced (reported by the manager).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientOutcome<K, R> {
    /// The reduced table, sorted by key — deterministic regardless of
    /// which ranks computed which map tasks.
    pub table: Vec<(K, R)>,
    /// Map tasks re-dispatched after their assigned rank died.
    pub reassigned: u64,
    /// Map tasks completed per rank.
    pub executed: Vec<usize>,
    /// Ranks that failed during the run (empty in a fault-free run).
    pub failed_ranks: Vec<usize>,
}

/// Run a full map → group → reduce job on `ranks` ranks with the map
/// phase farmed out fault-tolerantly under the given chaos `plan`
/// (use [`FaultPlan::none`] for a production run).
///
/// `map_fn(task, emit)` is called once per task index in `0..n_tasks` on
/// whichever rank the task lands on; `reduce_fn` folds each key's values
/// (in task order) on the manager. Both must be deterministic for the
/// bit-identical guarantee.
///
/// Returns `Err` only if the manager rank itself failed; worker deaths
/// are absorbed and listed in [`ResilientOutcome::failed_ranks`].
pub fn map_reduce_resilient<K, V, R, M, RF>(
    ranks: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    n_tasks: usize,
    map_fn: M,
    reduce_fn: RF,
) -> Result<ResilientOutcome<K, R>, RankError>
where
    K: Ord + Send + ByteSized + 'static,
    V: Send + ByteSized + 'static,
    R: Send,
    M: Fn(usize, &mut dyn FnMut(K, V)) + Send + Sync,
    RF: Fn(&K, Vec<V>) -> R + Send + Sync,
{
    let mut results = Cluster::run_with_plan(ranks, plan, |comm| {
        let farm = task_farm(comm, n_tasks, policy, |t| {
            let mut pairs: Vec<(K, V)> = Vec::new();
            map_fn(t, &mut |k, v| pairs.push((k, v)));
            pairs
        })?;
        // Manager only: group values by key in task order, then reduce.
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for pairs in farm.results {
            for (k, v) in pairs {
                groups.entry(k).or_default().push(v);
            }
        }
        let table: Vec<(K, R)> = groups
            .into_iter()
            .map(|(k, vs)| {
                let r = reduce_fn(&k, vs);
                (k, r)
            })
            .collect();
        Some((table, farm.reassigned, farm.executed))
    });

    let failed_ranks: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .map(|(rank, _)| rank)
        .collect();
    match results.swap_remove(0) {
        Ok(report) => {
            let (table, reassigned, executed) = report.expect("manager reports");
            Ok(ResilientOutcome {
                table,
                reassigned,
                executed,
                failed_ranks,
            })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_cluster::EdgeFault;
    use std::time::Duration;

    /// Word-count-shaped job: task i emits (i % 7, i²).
    fn emit_mod7(task: usize, emit: &mut dyn FnMut(usize, u64)) {
        emit(task % 7, (task as u64) * (task as u64));
    }

    fn sum(_: &usize, vs: Vec<u64>) -> u64 {
        vs.iter().sum()
    }

    fn reference_table(n_tasks: usize) -> Vec<(usize, u64)> {
        map_reduce_resilient(1, &FaultPlan::none(), &RetryPolicy::default(), n_tasks, emit_mod7, sum)
            .expect("serial run cannot fail")
            .table
    }

    #[test]
    fn fault_free_run_matches_serial() {
        let expected = reference_table(50);
        let out = map_reduce_resilient(
            4,
            &FaultPlan::none(),
            &RetryPolicy::default(),
            50,
            emit_mod7,
            sum,
        )
        .expect("no faults injected");
        assert_eq!(out.table, expected);
        assert_eq!(out.reassigned, 0);
        assert!(out.failed_ranks.is_empty());
    }

    #[test]
    fn dead_rank_tasks_rerun_bit_identically() {
        let expected = reference_table(40);
        for seed in [1, 2, 3] {
            // Rank 2 dies early; its map tasks must be reassigned.
            let plan = FaultPlan::new(seed).kill(2, 2);
            let out = map_reduce_resilient(
                4,
                &plan,
                &RetryPolicy::default(),
                40,
                emit_mod7,
                sum,
            )
            .expect("manager survives");
            assert_eq!(out.table, expected, "seed {seed}: bit-identical to fault-free");
            assert_eq!(out.failed_ranks, vec![2], "seed {seed}");
            assert!(out.reassigned >= 1, "seed {seed}");
        }
    }

    #[test]
    fn chaos_without_kills_is_transparent() {
        let expected = reference_table(30);
        let plan = FaultPlan::new(9).all_edges(EdgeFault {
            dup_p: 0.2,
            reorder_p: 0.2,
            delay: Duration::from_micros(20),
            ..EdgeFault::none()
        });
        let out =
            map_reduce_resilient(3, &plan, &RetryPolicy::default(), 30, emit_mod7, sum)
                .expect("no kills scheduled");
        assert_eq!(out.table, expected);
        assert!(out.failed_ranks.is_empty());
    }
}
