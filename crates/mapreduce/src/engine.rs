//! The MapReduce engine: map, combine, collate (shuffle), reduce, gather.

use std::collections::HashMap;
use std::hash::Hash;

use peachy_cluster::dist::ROUTE_SEED;
use peachy_cluster::{ByteSized, Comm};

/// Balanced block distribution of `n` items over `size` ranks: rank `r`
/// owns a contiguous range, sizes differing by at most one. Re-exported
/// from the workspace-wide partition vocabulary.
pub use peachy_cluster::dist::block_range;

/// A rank-local store of key–value pairs produced by a map phase.
#[derive(Debug, Clone)]
pub struct Kv<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Kv<K, V> {
    /// An empty store.
    pub fn new() -> Self {
        Self { pairs: Vec::new() }
    }

    /// Number of local pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the local store is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Borrow the local pairs.
    pub fn pairs(&self) -> &[(K, V)] {
        &self.pairs
    }

    /// Add one pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }
}

impl<K: Hash + Eq, V> Kv<K, V> {
    /// Local pre-reduction (a *combiner*): merge all local values sharing a
    /// key with `f` before the shuffle, cutting communication volume.
    ///
    /// This is the two-level optimization of §2: the cross-rank shuffle then
    /// carries one pair per (rank, key) instead of one per emission.
    pub fn combine<F>(self, f: F) -> Kv<K, V>
    where
        F: Fn(V, V) -> V,
    {
        let mut merged: HashMap<K, V> = HashMap::new();
        for (k, v) in self.pairs {
            match merged.remove(&k) {
                Some(prev) => {
                    let combined = f(prev, v);
                    merged.insert(k, combined);
                }
                None => {
                    merged.insert(k, v);
                }
            }
        }
        Kv {
            pairs: merged.into_iter().collect(),
        }
    }
}

impl<K, V> Default for Kv<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A rank-local store of grouped pairs after the shuffle: each key this
/// rank owns, with *all* values for it from every rank.
#[derive(Debug, Clone)]
pub struct Grouped<K, V> {
    groups: Vec<(K, Vec<V>)>,
}

impl<K, V> Grouped<K, V> {
    /// Number of keys owned by this rank.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether this rank owns no keys.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Borrow the groups.
    pub fn groups(&self) -> &[(K, Vec<V>)] {
        &self.groups
    }

    /// Reduce each key's value list to a single result, locally.
    pub fn reduce<R, F>(self, f: F) -> Vec<(K, R)>
    where
        F: Fn(&K, Vec<V>) -> R,
    {
        self.groups
            .into_iter()
            .map(|(k, vs)| {
                let r = f(&k, vs);
                (k, r)
            })
            .collect()
    }
}

/// Stable key→rank routing: `stable_hash(key) % size`. Uses the
/// workspace's seeded version-stable hasher so every rank computes
/// identical routes — and keeps computing them across Rust releases,
/// unlike `DefaultHasher`.
fn owner_of<K: Hash>(key: &K, size: usize) -> usize {
    peachy_cluster::dist::owner_of_key(key, size, ROUTE_SEED)
}

/// The per-rank MapReduce driver, borrowing the rank's communicator.
pub struct MapReduce<'c> {
    comm: &'c mut Comm,
}

impl<'c> MapReduce<'c> {
    /// Wrap a communicator.
    pub fn new(comm: &'c mut Comm) -> Self {
        Self { comm }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Cluster size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The half-open range of global task indices this rank maps, using
    /// balanced block distribution (first `n_tasks % size` ranks get one
    /// extra — the uneven-division pattern §7 teaches).
    pub fn my_tasks(&self, n_tasks: usize) -> std::ops::Range<usize> {
        block_range(n_tasks, self.size(), self.rank())
    }

    /// Map phase: `n_tasks` global tasks are block-distributed over ranks;
    /// this rank calls `f(task_index, emit)` for each of its tasks.
    pub fn map<K, V, F>(&mut self, n_tasks: usize, f: F) -> Kv<K, V>
    where
        F: Fn(usize, &mut dyn FnMut(K, V)),
    {
        let mut kv = Kv::new();
        for i in self.my_tasks(n_tasks) {
            let mut emit = |k: K, v: V| kv.emit(k, v);
            f(i, &mut emit);
        }
        kv
    }

    /// Collate: shuffle pairs to their owner rank (`hash(key) % size`) and
    /// group values by key. Collective — every rank must call it.
    pub fn collate<K, V>(&mut self, kv: Kv<K, V>) -> Grouped<K, V>
    where
        K: Hash + Eq + Send + ByteSized + 'static,
        V: Send + ByteSized + 'static,
    {
        let size = self.size();
        // Bucket local pairs by destination rank.
        let mut buckets: Vec<Vec<(K, V)>> = (0..size).map(|_| Vec::new()).collect();
        for (k, v) in kv.pairs {
            let dst = owner_of(&k, size);
            buckets[dst].push((k, v));
        }
        // One all-to-all exchange carries everything.
        let received = self.comm.alltoall(buckets);
        // Group by key.
        let mut groups: HashMap<K, Vec<V>> = HashMap::new();
        for bucket in received {
            for (k, v) in bucket {
                groups.entry(k).or_default().push(v);
            }
        }
        Grouped {
            groups: groups.into_iter().collect(),
        }
    }

    /// Gather every rank's reduced pairs at `root` (`Some` there, `None`
    /// elsewhere). Collective.
    pub fn gather_results<K, R>(&mut self, root: usize, local: Vec<(K, R)>) -> Option<Vec<(K, R)>>
    where
        K: Send + ByteSized + 'static,
        R: Send + ByteSized + 'static,
    {
        self.comm
            .gather(root, local)
            .map(|per_rank| per_rank.into_iter().flatten().collect())
    }

    /// Gather every rank's reduced pairs on *all* ranks. Collective.
    pub fn allgather_results<K, R>(&mut self, local: Vec<(K, R)>) -> Vec<(K, R)>
    where
        K: Clone + Send + ByteSized + 'static,
        R: Clone + Send + ByteSized + 'static,
    {
        self.comm.allgather(local).into_iter().flatten().collect()
    }

    /// Total pair count across all ranks (for communication-cost
    /// accounting in tests/benches). Collective.
    pub fn global_pair_count<K, V>(&mut self, kv: &Kv<K, V>) -> u64 {
        self.comm.allreduce(kv.len() as u64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_cluster::Cluster;

    #[test]
    fn block_range_covers_everything() {
        for n in [0usize, 1, 7, 10, 100] {
            for size in [1usize, 2, 3, 7, 16] {
                let mut total = 0;
                let mut expected_start = 0;
                for r in 0..size {
                    let range = block_range(n, size, r);
                    assert_eq!(range.start, expected_start, "ranges must be contiguous");
                    expected_start = range.end;
                    total += range.len();
                }
                assert_eq!(total, n, "n={n} size={size}");
            }
        }
    }

    #[test]
    fn block_range_balanced() {
        // 10 tasks over 4 ranks: 3,3,2,2.
        let sizes: Vec<usize> = (0..4).map(|r| block_range(10, 4, r).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn map_covers_all_tasks_exactly_once() {
        let out = Cluster::run(3, |comm| {
            let mut mr = MapReduce::new(comm);
            let kv = mr.map(10, |i, emit| emit(i, ()));
            kv.pairs().iter().map(|&(k, _)| k).collect::<Vec<_>>()
        });
        let mut all: Vec<usize> = out.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn collate_groups_all_values_for_a_key() {
        let out = Cluster::run(4, |comm| {
            let mut mr = MapReduce::new(comm);
            // Every rank emits ("x", rank) and ("y", rank*10).
            let mut kv = Kv::new();
            kv.emit("x", mr.rank());
            kv.emit("y", mr.rank() * 10);
            let grouped = mr.collate(kv);
            let reduced = grouped.reduce(|_, mut vs| {
                vs.sort_unstable();
                vs
            });
            mr.allgather_results(reduced)
        });
        for result in out {
            let mut result = result;
            result.sort();
            assert_eq!(
                result,
                vec![("x", vec![0, 1, 2, 3]), ("y", vec![0, 10, 20, 30])]
            );
        }
    }

    #[test]
    fn keys_are_owned_by_exactly_one_rank() {
        let out = Cluster::run(4, |comm| {
            let mut mr = MapReduce::new(comm);
            let kv = mr.map(100, |i, emit| emit(i % 17, 1u32));
            let grouped = mr.collate(kv);
            grouped.groups().iter().map(|(k, _)| *k).collect::<Vec<_>>()
        });
        let mut all: Vec<usize> = out.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 17, "each key owned exactly once");
    }

    #[test]
    fn combine_preserves_reduction_result() {
        // Sum per key must be identical with and without the combiner.
        let run = |use_combiner: bool| {
            Cluster::run(3, move |comm| {
                let mut mr = MapReduce::new(comm);
                let kv = mr.map(60, |i, emit| emit(i % 5, i as u64));
                let kv = if use_combiner {
                    kv.combine(|a, b| a + b)
                } else {
                    kv
                };
                let grouped = mr.collate(kv);
                let mut res = mr.allgather_results(grouped.reduce(|_, vs| vs.iter().sum::<u64>()));
                res.sort();
                res
            })
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn combine_cuts_shuffled_pair_count() {
        let counts = Cluster::run(4, |comm| {
            let mut mr = MapReduce::new(comm);
            let kv = mr.map(400, |i, emit| emit(i % 3, 1u64));
            let before = mr.global_pair_count(&kv);
            let kv = kv.combine(|a, b| a + b);
            let after = mr.global_pair_count(&kv);
            (before, after)
        });
        let (before, after) = counts[0];
        assert_eq!(before, 400);
        assert!(
            after <= 12,
            "after combine: ≤ keys × ranks = 3×4 pairs, got {after}"
        );
    }

    #[test]
    fn gather_results_only_at_root() {
        let out = Cluster::run(3, |comm| {
            let mut mr = MapReduce::new(comm);
            let kv = mr.map(9, |i, emit| emit(i, i * i));
            let grouped = mr.collate(kv);
            let reduced = grouped.reduce(|_, vs| vs[0]);
            mr.gather_results(2, reduced)
        });
        assert!(out[0].is_none() && out[1].is_none());
        let mut table = out[2].clone().unwrap();
        table.sort();
        assert_eq!(table, (0..9).map(|i| (i, i * i)).collect::<Vec<_>>());
    }

    #[test]
    fn empty_map_produces_empty_result() {
        let out = Cluster::run(2, |comm| {
            let mut mr = MapReduce::new(comm);
            let kv: Kv<u32, u32> = mr.map(0, |_, _| unreachable!());
            let grouped = mr.collate(kv);
            mr.allgather_results(grouped.reduce(|_, vs| vs.len()))
        });
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn single_rank_degenerates_to_sequential() {
        let out = Cluster::run(1, |comm| {
            let mut mr = MapReduce::new(comm);
            let kv = mr.map(5, |i, emit| emit("k", i as u64));
            let grouped = mr.collate(kv);
            grouped.reduce(|_, vs| vs.iter().sum::<u64>())
        });
        assert_eq!(out[0], vec![("k", 10)]);
    }
}
