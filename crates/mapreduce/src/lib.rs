//! # peachy-mapreduce
//!
//! A MapReduce engine in the style of **MapReduce-MPI** (Plimpton & Devine,
//! *Parallel Computing* 2011) — the library the §2 k-NN assignment is built
//! on — implemented over [`peachy_cluster`]'s rank/message substrate.
//!
//! Like MapReduce-MPI (and unlike Hadoop), the engine is a *library inside
//! an SPMD program*: every rank participates in each phase, and the phases
//! are explicit calls the application composes:
//!
//! 1. [`MapReduce::map`] — each rank maps its block of the global input,
//!    emitting key–value pairs into a local [`Kv`] store. This is where
//!    "multiple map tasks parse the database file in parallel" happens.
//! 2. [`Kv::combine`] — *optional* local pre-reduction on each rank before
//!    any communication; the "local reductions at each rank … noticeably
//!    improve the communication cost" optimization the assignment
//!    highlights.
//! 3. [`MapReduce::collate`] — the shuffle: pairs are routed to the owner
//!    rank of `hash(key) % size` (MapReduce's "load balancing through
//!    hashing") via an all-to-all exchange, then grouped per key into a
//!    [`Grouped`] store.
//! 4. [`Grouped::reduce`] — each rank reduces its keys locally.
//! 5. [`MapReduce::gather_results`] — collect all reduced pairs at a root
//!    rank (or use [`MapReduce::allgather_results`] for every rank).
//!
//! ```
//! use peachy_cluster::Cluster;
//! use peachy_mapreduce::MapReduce;
//!
//! // Count word lengths across 4 ranks.
//! let docs = vec!["a bb a", "bb ccc a"];
//! let out = Cluster::run(4, |comm| {
//!     let docs = docs.clone();
//!     let mut mr = MapReduce::new(comm);
//!     let kv = mr.map(docs.len(), |i, emit| {
//!         for w in docs[i].split_whitespace() {
//!             emit(w.to_string(), 1u64);
//!         }
//!     });
//!     let grouped = mr.collate(kv);
//!     let counts = grouped.reduce(|_, vs| vs.iter().sum::<u64>());
//!     mr.gather_results(0, counts)
//! });
//! let mut table = out[0].clone().unwrap();
//! table.sort();
//! assert_eq!(table, vec![("a".into(), 3), ("bb".into(), 2), ("ccc".into(), 1)]);
//! ```

//! When ranks can die, [`resilient::map_reduce_resilient`] replaces the
//! static block map phase with a fault-tolerant task farm: map tasks owned
//! by a dead rank are reassigned (bounded by a retry policy) and the output
//! stays bit-identical to the fault-free run.

pub mod engine;
pub mod invertedindex;
pub mod resilient;
pub mod wordcount;

pub use engine::{Grouped, Kv, MapReduce};
pub use resilient::{map_reduce_resilient, ResilientOutcome};
