//! Inverted index: the second classic MapReduce teaching job.
//!
//! Word counting shows per-key *reduction*; the inverted index (word →
//! sorted list of documents containing it) shows per-key *collection*,
//! where the combiner merges posting lists instead of adding counters —
//! the same map/collate/reduce skeleton with a different value algebra,
//! which is exactly how MapReduce-MPI courses sequence the two.

use peachy_cluster::Cluster;

use crate::engine::MapReduce;

/// Build the inverted index of `documents` on `ranks` ranks: for every
/// word, the ascending list of document ids containing it (each id once).
pub fn inverted_index(documents: &[String], ranks: usize) -> Vec<(String, Vec<usize>)> {
    let docs: Vec<String> = documents.to_vec();
    let mut out = Cluster::run(ranks, move |comm| {
        let mut mr = MapReduce::new(comm);
        let kv = mr.map(docs.len(), |doc_id, emit| {
            // Each word emitted once per document (local dedup).
            let mut seen = std::collections::HashSet::new();
            for token in docs[doc_id].split_whitespace() {
                let word: String = token
                    .trim_matches(|c: char| !c.is_alphanumeric())
                    .to_lowercase();
                if !word.is_empty() && seen.insert(word.clone()) {
                    emit(word, vec![doc_id]);
                }
            }
        });
        // Combiner: merge posting lists before the shuffle.
        let kv = kv.combine(merge_postings);
        let grouped = mr.collate(kv);
        let reduced =
            grouped.reduce(|_, lists| lists.into_iter().reduce(merge_postings).unwrap_or_default());
        mr.gather_results(0, reduced)
    });
    let mut table = out.swap_remove(0).expect("root gathered index");
    table.sort_by(|a, b| a.0.cmp(&b.0));
    table
}

/// Merge two ascending, duplicate-free posting lists.
fn merge_postings(a: Vec<usize>, b: Vec<usize>) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sequential reference for verification.
pub fn inverted_index_seq(documents: &[String]) -> Vec<(String, Vec<usize>)> {
    let mut index: std::collections::HashMap<String, Vec<usize>> = std::collections::HashMap::new();
    for (doc_id, doc) in documents.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for token in doc.split_whitespace() {
            let word: String = token
                .trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase();
            if !word.is_empty() && seen.insert(word.clone()) {
                index.entry(word).or_default().push(doc_id);
            }
        }
    }
    let mut table: Vec<(String, Vec<usize>)> = index.into_iter().collect();
    table.sort_by(|a, b| a.0.cmp(&b.0));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "the cat sat on the mat".into(),
            "the dog sat".into(),
            "cat and dog and cat".into(),
            "".into(),
            "MAT mat Mat".into(),
        ]
    }

    #[test]
    fn matches_sequential_reference() {
        let seq = inverted_index_seq(&corpus());
        for ranks in [1usize, 2, 3, 7] {
            assert_eq!(inverted_index(&corpus(), ranks), seq, "ranks = {ranks}");
        }
    }

    #[test]
    fn postings_are_correct() {
        let index = inverted_index(&corpus(), 3);
        let get = |w: &str| index.iter().find(|(k, _)| k == w).map(|(_, v)| v.clone());
        assert_eq!(get("cat"), Some(vec![0, 2]));
        assert_eq!(get("the"), Some(vec![0, 1]));
        assert_eq!(
            get("mat"),
            Some(vec![0, 4]),
            "case folded, deduped within doc"
        );
        assert_eq!(get("dog"), Some(vec![1, 2]));
        assert_eq!(get("zebra"), None);
    }

    #[test]
    fn postings_sorted_and_unique() {
        let index = inverted_index(&corpus(), 4);
        for (word, postings) in &index {
            for w in postings.windows(2) {
                assert!(
                    w[0] < w[1],
                    "postings of {word:?} not strictly ascending: {postings:?}"
                );
            }
        }
    }

    #[test]
    fn merge_postings_cases() {
        assert_eq!(merge_postings(vec![1, 3], vec![2, 3, 5]), vec![1, 2, 3, 5]);
        assert_eq!(merge_postings(vec![], vec![7]), vec![7]);
        assert_eq!(merge_postings(vec![1, 2], vec![]), vec![1, 2]);
    }

    #[test]
    fn empty_corpus() {
        assert!(inverted_index(&[], 2).is_empty());
    }
}
