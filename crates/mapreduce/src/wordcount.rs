//! Word counting: the warm-up job of the §2 assignment materials.
//!
//! The UNC Charlotte assignment ships "a classic problem, Word Counting, to
//! familiarize the students with programming using MapReduce MPI" before
//! they tackle k-NN. This module is that job, end to end, with the combiner
//! on or off.

use peachy_cluster::Cluster;

use crate::engine::MapReduce;

/// Count word occurrences across `documents` using `ranks` ranks.
///
/// Words are whitespace-separated tokens lower-cased with punctuation
/// trimmed. Results are returned sorted by descending count, then word.
pub fn word_count(documents: &[String], ranks: usize, use_combiner: bool) -> Vec<(String, u64)> {
    let docs: Vec<String> = documents.to_vec();
    let mut out = Cluster::run(ranks, move |comm| {
        let mut mr = MapReduce::new(comm);
        let kv = mr.map(docs.len(), |i, emit| {
            for token in docs[i].split_whitespace() {
                let word: String = token
                    .trim_matches(|c: char| !c.is_alphanumeric())
                    .to_lowercase();
                if !word.is_empty() {
                    emit(word, 1u64);
                }
            }
        });
        let kv = if use_combiner {
            kv.combine(|a, b| a + b)
        } else {
            kv
        };
        let grouped = mr.collate(kv);
        let reduced = grouped.reduce(|_, vs| vs.iter().sum::<u64>());
        mr.gather_results(0, reduced)
    });
    let mut table = out.swap_remove(0).expect("root gathered results");
    table.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    table
}

/// Sequential reference implementation for verification.
pub fn word_count_seq(documents: &[String]) -> Vec<(String, u64)> {
    let mut counts = std::collections::HashMap::<String, u64>::new();
    for doc in documents {
        for token in doc.split_whitespace() {
            let word: String = token
                .trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase();
            if !word.is_empty() {
                *counts.entry(word).or_insert(0) += 1;
            }
        }
    }
    let mut table: Vec<(String, u64)> = counts.into_iter().collect();
    table.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "the quick brown fox jumps over the lazy dog".into(),
            "The dog barks; the fox runs.".into(),
            "Lazy, lazy dog!".into(),
            "".into(),
        ]
    }

    #[test]
    fn matches_sequential_reference() {
        let seq = word_count_seq(&corpus());
        for ranks in [1, 2, 4, 7] {
            assert_eq!(word_count(&corpus(), ranks, false), seq, "ranks = {ranks}");
            assert_eq!(
                word_count(&corpus(), ranks, true),
                seq,
                "ranks = {ranks} (combiner)"
            );
        }
    }

    #[test]
    fn counts_are_correct() {
        let table = word_count(&corpus(), 3, true);
        let get = |w: &str| table.iter().find(|(k, _)| k == w).map(|(_, c)| *c);
        assert_eq!(get("the"), Some(4));
        assert_eq!(get("lazy"), Some(3));
        assert_eq!(get("dog"), Some(3));
        assert_eq!(get("fox"), Some(2));
        assert_eq!(get("barks"), Some(1));
        assert_eq!(get("dog!"), None, "punctuation trimmed");
    }

    #[test]
    fn sorted_by_count_then_word() {
        let table = word_count(&corpus(), 2, true);
        for pair in table.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "ordering violated: {pair:?}"
            );
        }
    }

    #[test]
    fn empty_corpus() {
        assert!(word_count(&[], 2, false).is_empty());
        assert!(word_count(&["...".into(), "  ".into()], 2, true).is_empty());
    }

    #[test]
    fn more_ranks_than_documents() {
        let docs = vec!["one two".to_string()];
        assert_eq!(word_count(&docs, 6, false), word_count_seq(&docs));
    }
}
