//! Property tests: MapReduce jobs equal their sequential references for
//! arbitrary corpora, rank counts, and combiner settings.

use peachy_mapreduce::engine::block_range;
use peachy_mapreduce::invertedindex::{inverted_index, inverted_index_seq};
use peachy_mapreduce::wordcount::{word_count, word_count_seq};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::collection::vec("[a-c]{1,3}", 0..8).prop_map(|words| words.join(" ")),
        0..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn word_count_equals_sequential(docs in corpus_strategy(), ranks in 1usize..6, combine in any::<bool>()) {
        prop_assert_eq!(word_count(&docs, ranks, combine), word_count_seq(&docs));
    }

    #[test]
    fn inverted_index_equals_sequential(docs in corpus_strategy(), ranks in 1usize..6) {
        prop_assert_eq!(inverted_index(&docs, ranks), inverted_index_seq(&docs));
    }

    #[test]
    fn inverted_index_is_consistent_with_word_count(docs in corpus_strategy()) {
        // A word is in the count table iff it has postings, and its posting
        // count never exceeds its occurrence count.
        let counts = word_count_seq(&docs);
        let index = inverted_index_seq(&docs);
        prop_assert_eq!(counts.len(), index.len());
        for (word, postings) in &index {
            let count = counts.iter().find(|(w, _)| w == word).map(|(_, c)| *c).unwrap_or(0);
            prop_assert!(postings.len() as u64 <= count, "{}: {} docs > {} occurrences", word, postings.len(), count);
            prop_assert!(!postings.is_empty());
        }
    }

    #[test]
    fn block_range_partitions(n in 0usize..1000, size in 1usize..32) {
        let mut covered = 0;
        for r in 0..size {
            let range = block_range(n, size, r);
            prop_assert_eq!(range.start, covered);
            covered = range.end;
        }
        prop_assert_eq!(covered, n);
    }
}
