//! Reified logical plans: a type-free view of the lineage DAG.
//!
//! Lineage nodes are `Arc<dyn Op<T>>` with a different `T` at every level,
//! so a plan walker cannot traverse them with typed references. The
//! [`Lineage`] supertrait (every `Op<T>` implements it) erases the row
//! type: each node can describe itself as a [`PlanNode`], enumerate its
//! children as `&dyn Lineage`, and expose the two hooks the optimizer's
//! runtime pass needs — a consumption counter and an auto-cache trigger.
//!
//! Node identity is the op's allocation address. Lineage nodes live behind
//! `Arc`s for their whole life, so the address is stable and unique while
//! the plan exists — exactly the window in which the optimizer looks at it.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::store::Residency;

/// Label fragment marking a materialized shuffle boundary (also used by
/// `explain()`, predating the optimizer).
pub const SHUFFLE_MARK: &str = "=== stage boundary (shuffle) ===";

/// Label fragment marking a shuffle the optimizer elided.
pub const ELIDED_MARK: &str = "~~~ shuffle elided (co-partitioned) ~~~";

/// How a dataset's rows are distributed over partitions.
///
/// This is the fact the shuffle-elision rewrite trades on: a dataset that
/// is [`Partitioning::HashKeyed`] with the same seed and partition count as
/// a downstream shuffle's routing function is *already* shuffled — every
/// key in partition `p` hashes back to `p`, so the boundary moves nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// No known relationship between keys and partitions.
    Arbitrary,
    /// Rows are placed by `owner_of_key(key, partitions, seed)` — the
    /// postcondition of every hash shuffle.
    HashKeyed {
        /// Seed of the stable hash that routed the rows.
        seed: u64,
        /// Partition count the rows were routed into.
        partitions: usize,
    },
}

impl Partitioning {
    /// Does this layout satisfy a shuffle routing by `seed` into
    /// `partitions` buckets? Only an exact match (same seed *and* same
    /// count) is safe — see the negative tests in `keyed.rs`.
    pub fn satisfies(&self, seed: u64, partitions: usize) -> bool {
        matches!(
            self,
            Partitioning::HashKeyed { seed: s, partitions: p }
                if *s == seed && *p == partitions
        )
    }
}

/// What kind of plan node this is, with the per-kind facts the optimizer
/// report renders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanKind {
    /// A source holding resident rows.
    Source,
    /// A row-wise narrow op (map/filter/flat_map).
    Narrow {
        /// Whether this op participates in push-based fusion (off when the
        /// dataset runs under a naive [`OptimizerConfig`]).
        ///
        /// [`OptimizerConfig`]: crate::optimize::OptimizerConfig
        fused: bool,
        /// Whether the optimizer armed this node's auto-cache.
        auto_cached: bool,
        /// Lifetime consumption count seen by `prepare_action`.
        consumed: u32,
    },
    /// A partition-wise narrow op (map_partitions, coalesce): a fusion
    /// barrier but not a stage boundary.
    NarrowBarrier,
    /// A hash shuffle boundary.
    Shuffle {
        /// Stage id labeling this boundary's rows in the
        /// [`CommStats`](peachy_cluster::CommStats) per-stage ledger.
        stage: u32,
        /// True when the optimizer removed the data movement (upstream
        /// already partitioned to match).
        elided: bool,
    },
    /// A round-robin repartition boundary.
    Repartition,
    /// An explicit user cache.
    Cache,
    /// Concatenation of two lineages.
    Union,
    /// A retry wrapper (fusion barrier: re-runs must not re-emit rows).
    Retry,
}

/// One node of a rendered plan tree.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Node identity (the op's allocation address).
    pub id: usize,
    /// Human-readable label, matching `explain()`.
    pub label: String,
    /// Structural kind plus per-kind facts.
    pub kind: PlanKind,
    /// Output partition count.
    pub partitions: usize,
    /// Estimated output rows (exact at sources and materialized shuffles,
    /// propagated — so approximate — elsewhere).
    pub est_rows: Option<u64>,
    /// `size_of` of one output row: the crude per-row cost factor used
    /// when no measured bytes exist for a stage.
    pub row_bytes: usize,
    /// For shuffle nodes whose stage has already run: the bytes the stage
    /// ledger attributed to it ([`CommStats::stage_comm`]). The cost model
    /// prefers this over size estimates.
    ///
    /// [`CommStats::stage_comm`]: peachy_cluster::CommStats::stage_comm
    pub measured_bytes: Option<u64>,
    /// For nodes holding partitions in a byte-budgeted store: whether those
    /// partitions live in RAM or (partly) on disk. `None` for nodes without
    /// a store, and for stores running without a budget.
    pub residency: Option<Residency>,
    /// Child subtrees.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Estimated bytes needed to materialize this node's output once.
    pub fn est_bytes(&self) -> Option<u64> {
        self.est_rows.map(|r| r * self.row_bytes as u64)
    }

    /// Visit this node and all descendants, parents before children.
    pub fn walk(&self, visit: &mut dyn FnMut(&PlanNode)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }
}

/// The type-free face of a lineage node. `Op<T>: Lineage`, so a plan
/// walker can traverse a heterogeneously-typed DAG through `&dyn Lineage`
/// references (trait upcasting from `&dyn Op<T>`).
pub(crate) trait Lineage: Send + Sync {
    /// Render this node and its lineage as a plan tree.
    fn plan(&self) -> PlanNode;

    /// Visit each direct child as a type-free lineage node.
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage));

    /// Stable identity: the allocation address of the op.
    fn lineage_id(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Record one consumption of this node by an action and return the
    /// lifetime total. Nodes that cannot hold an auto-cache return `None`.
    fn note_consumed(&self) -> Option<u32> {
        None
    }

    /// Estimated output rows (see [`PlanNode::est_rows`]).
    fn est_rows(&self) -> Option<u64>;

    /// Estimated bytes to materialize this node once — the auto-cache cost
    /// model's input. `None` where the row type's size is unknown or the
    /// row estimate is unavailable.
    fn est_cache_bytes(&self) -> Option<u64> {
        None
    }

    /// Switch this node's auto-cache on (no-op for nodes without one).
    fn arm_auto_cache(&self) {}
}

/// Allocate a process-unique stage id for a shuffle boundary, labeling its
/// rows in the per-stage [`CommStats`](peachy_cluster::CommStats) ledger.
pub(crate) fn next_stage_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfies_requires_exact_match() {
        let p = Partitioning::HashKeyed {
            seed: 42,
            partitions: 8,
        };
        assert!(p.satisfies(42, 8));
        assert!(!p.satisfies(42, 4), "partition count must match");
        assert!(!p.satisfies(43, 8), "seed must match");
        assert!(!Partitioning::Arbitrary.satisfies(42, 8));
    }

    #[test]
    fn stage_ids_are_unique() {
        let a = next_stage_id();
        let b = next_stage_id();
        assert_ne!(a, b);
        assert!(b > 0);
    }

    #[test]
    fn plan_node_estimates_bytes() {
        let node = PlanNode {
            id: 1,
            label: "x".into(),
            kind: PlanKind::Source,
            partitions: 2,
            est_rows: Some(10),
            row_bytes: 16,
            measured_bytes: None,
            residency: None,
            children: vec![],
        };
        assert_eq!(node.est_bytes(), Some(160));
    }
}
