//! The shuffle: hash partitioning of keyed rows, materialized once.
//!
//! Wide transformations cannot pipeline — every output partition may need
//! rows from every input partition. Like Spark's shuffle files, the map
//! side here runs once (all input partitions in parallel, each bucketing
//! its rows by `hash(key) % partitions`) and the bucketed output is kept
//! for the reduce side to consume. [`ShuffleStats`] counts the records
//! crossing the boundary so pipelines can be *measured* while being
//! improved — the §4 exercise.
//!
//! The hash is the workspace's seeded version-stable hasher
//! ([`peachy_cluster::dist::owner_of_key`], built on the splitmix
//! finalizer), not `DefaultHasher`: bucket placement is pinned by test and
//! survives Rust releases.

use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use peachy_cluster::dist::{owner_of_key, ROUTE_SEED};
use peachy_cluster::ByteSized;
use rayon::prelude::*;

use crate::dataset::{explain_into, take_rows, up, Op};
use crate::plan::{Lineage, PlanKind, PlanNode, ELIDED_MARK, SHUFFLE_MARK};
use crate::store::{PartitionStore, SpillRow};

/// Counters shared by all shuffles in a lineage (attach one per pipeline
/// run to compare variants). This is the workspace-wide
/// [`peachy_cluster::CommStats`] block — the shuffle increments its
/// `records`/`shuffles` counters, so dataflow runs are directly comparable
/// with executor-backend runs in the E15 experiment.
pub type ShuffleStats = peachy_cluster::CommStats;

/// Stable key → partition routing, shared with the MapReduce collate
/// (same hasher, same [`ROUTE_SEED`]).
pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    owner_of_key(key, partitions, ROUTE_SEED)
}

/// One input partition's rows, bucketed by output partition.
type Bucketed<K, V> = Vec<Vec<(K, V)>>;

/// The wide lineage node: hash-shuffles `(K, V)` rows into `partitions`
/// buckets, then applies `post` to each bucket (group, reduce, …).
pub(crate) struct ShuffleOp<K, V, T, F> {
    pub parent: Arc<dyn Op<(K, V)>>,
    pub partitions: usize,
    pub post: F,
    pub name: &'static str,
    pub stats: Option<Arc<ShuffleStats>>,
    /// Stage id labeling this boundary's traffic in the per-stage
    /// [`CommStats`](peachy_cluster::CommStats) ledger (allocated at
    /// construction via [`crate::plan::next_stage_id`]).
    pub stage_id: u32,
    /// The materialized buckets, behind the storage seam: a bucket whose
    /// exact byte size (known from the route pass, before any bucket is
    /// built) does not fit the budget is streamed to disk instead of
    /// merged in RAM.
    pub buckets: PartitionStore<(K, V)>,
    /// Guards the one-shot route-and-materialize pass.
    pub routed: OnceLock<()>,
    /// Per-output-partition memo of `post`'s result: repeated actions on
    /// a shuffled dataset pay the bucket clone + regroup exactly once.
    pub posted: PartitionStore<T>,
    pub _marker: std::marker::PhantomData<fn() -> T>,
}

impl<K, V, T, F> ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + ByteSized + SpillRow + 'static,
    V: Clone + Send + Sync + ByteSized + SpillRow + 'static,
    F: Send + Sync,
{
    fn route(&self) {
        self.routed.get_or_init(|| {
            let (counts, sizes) = if self.buckets.streams() {
                self.route_streaming()
            } else {
                self.route_materialized()
            };
            let moved: u64 = counts.iter().map(|&c| c as u64).sum();
            let moved_bytes: u64 = sizes.iter().sum();
            if let Some(stats) = &self.stats {
                stats.add_shuffle(moved);
                stats.add_bytes(moved_bytes);
                stats.add_stage(self.stage_id, moved, moved_bytes);
            }
        });
    }

    /// The mem-mode (and rebuild-strawman) map side: every parent
    /// partition materialized and bucketed in parallel, two passes — route
    /// every row first, then fill exact-capacity buckets, so no bucket
    /// ever reallocates mid-fill. Each input also meters its per-bucket
    /// byte volume, so every output bucket's exact size is known before
    /// any bucket is merged — the spill decision happens pre-fill.
    fn route_materialized(&self) -> (Vec<usize>, Vec<u64>) {
        let per_input: Vec<(Bucketed<K, V>, Vec<u64>)> = (0..self.parent.partitions())
            .into_par_iter()
            .map(|i| {
                let rows = take_rows(self.parent.compute_partition_shared(i));
                let mut counts = vec![0usize; self.partitions];
                let routes: Vec<u32> = rows
                    .iter()
                    .map(|(k, _)| {
                        let p = partition_of(k, self.partitions);
                        counts[p] += 1;
                        p as u32
                    })
                    .collect();
                let mut buckets: Vec<Vec<(K, V)>> =
                    counts.iter().map(|&c| Vec::with_capacity(c)).collect();
                let mut bucket_bytes = vec![0u64; self.partitions];
                for (row, p) in rows.into_iter().zip(routes) {
                    bucket_bytes[p as usize] += row.approx_bytes() as u64;
                    buckets[p as usize].push(row);
                }
                (buckets, bucket_bytes)
            })
            .collect();
        // Exact per-bucket sizes: the sum over inputs of each input's
        // share of the bucket. The greedy pre-sized plan decides which
        // buckets stay resident — a pure function of sizes and budget.
        let mut sizes = vec![0u64; self.partitions];
        let mut counts = vec![0usize; self.partitions];
        for (input, bytes) in &per_input {
            for p in 0..self.partitions {
                counts[p] += input[p].len();
                sizes[p] += bytes[p];
            }
        }
        let spill = self.buckets.plan_presized(&sizes);
        // Spilled buckets stream-encode straight out of the per-input
        // buckets in input-partition order — the same merge order a
        // resident bucket gets — without ever concatenating in RAM.
        for (p, &spill_p) in spill.iter().enumerate() {
            if spill_p {
                self.buckets.fill_spilled(
                    p,
                    counts[p],
                    per_input.iter().flat_map(|(input, _)| input[p].iter()),
                );
            }
        }
        // Resident buckets merge per-input shares into exact-capacity
        // vectors, preserving input-partition order so downstream
        // grouping is deterministic.
        let mut merged: Vec<Vec<(K, V)>> = counts
            .iter()
            .zip(&spill)
            .map(|(&c, &s)| Vec::with_capacity(if s { 0 } else { c }))
            .collect();
        for (input, _) in per_input {
            for (p, bucket) in input.into_iter().enumerate() {
                if !spill[p] {
                    merged[p].extend(bucket);
                }
            }
        }
        for (p, rows) in merged.into_iter().enumerate() {
            if !spill[p] {
                self.buckets.fill_resident(p, Arc::new(rows));
            }
        }
        (counts, sizes)
    }

    /// The streaming map side (budgeted stores with streaming on): no
    /// input partition is ever materialized just to be bucketed.
    ///
    /// Pass 1 pushes every input through the narrow chain counting rows
    /// and bytes per output bucket (in parallel — the counters are
    /// per-input, merged after). Pass 2 replays the inputs *sequentially
    /// in input-partition order* — the same merge order the materialized
    /// path produces — routing each row either into an exact-capacity
    /// resident bucket or straight into a [`SpillSink`], so a spilled
    /// bucket is encoded row-by-row as it is produced.
    ///
    /// The cost is running the upstream chain twice, which is exactly the
    /// engine's lineage-recompute contract (row closures are pure;
    /// anything effectful sits behind a cache or retry barrier, whose
    /// stores replay pass 2 from their cursor instead of recomputing).
    fn route_streaming(&self) -> (Vec<usize>, Vec<u64>) {
        let n_in = self.parent.partitions();
        let per_input: Vec<(Vec<usize>, Vec<u64>)> = (0..n_in)
            .into_par_iter()
            .map(|i| {
                let mut counts = vec![0usize; self.partitions];
                let mut bytes = vec![0u64; self.partitions];
                self.parent.push_partition(i, &mut |row: (K, V)| {
                    let p = partition_of(&row.0, self.partitions);
                    counts[p] += 1;
                    bytes[p] += row.approx_bytes() as u64;
                });
                (counts, bytes)
            })
            .collect();
        let mut sizes = vec![0u64; self.partitions];
        let mut counts = vec![0usize; self.partitions];
        for (c, b) in &per_input {
            for p in 0..self.partitions {
                counts[p] += c[p];
                sizes[p] += b[p];
            }
        }
        let spill = self.buckets.plan_presized(&sizes);
        let mut sinks: Vec<Option<crate::store::SpillSink<'_, (K, V)>>> = spill
            .iter()
            .enumerate()
            .map(|(p, &s)| s.then(|| self.buckets.spill_sink(p, counts[p])))
            .collect();
        let mut resident: Vec<Vec<(K, V)>> = counts
            .iter()
            .zip(&spill)
            .map(|(&c, &s)| Vec::with_capacity(if s { 0 } else { c }))
            .collect();
        for i in 0..n_in {
            self.parent.push_partition(i, &mut |row: (K, V)| {
                let p = partition_of(&row.0, self.partitions);
                match &mut sinks[p] {
                    Some(sink) => sink.push(&row),
                    None => resident[p].push(row),
                }
            });
        }
        for sink in sinks.into_iter().flatten() {
            sink.finish();
        }
        for (p, rows) in resident.into_iter().enumerate() {
            if !spill[p] {
                self.buckets.fill_resident(p, Arc::new(rows));
            }
        }
        (counts, sizes)
    }
}

impl<K, V, T, F> Op<T> for ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + ByteSized + SpillRow + 'static,
    V: Clone + Send + Sync + ByteSized + SpillRow + 'static,
    T: Clone + Send + Sync + SpillRow + 'static,
    F: Fn(&mut dyn Iterator<Item = (K, V)>) -> Vec<T> + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.partitions
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        take_rows(self.compute_partition_shared(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        self.posted.get_or_init(idx, || {
            self.route();
            // The merge pass pulls the bucket through the store cursor:
            // resident rows clone out one at a time, a spilled bucket
            // decodes row-by-row — it is never rebuilt as one `Vec` just
            // to be grouped.
            let mut bucket = self.buckets.stream(idx).expect("route filled every bucket");
            Arc::new((self.post)(&mut bucket))
        })
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        for row in self.stream_partition(idx) {
            emit(row);
        }
    }
    fn stream_partition(&self, idx: usize) -> Box<dyn Iterator<Item = T> + '_> {
        // A filled memoized post replays through its cursor (a spilled
        // post cell streams); the first consumer computes and fills.
        if let Some(cursor) = self.posted.stream(idx) {
            return Box::new(cursor);
        }
        Box::new(take_rows(self.compute_partition_shared(idx)).into_iter())
    }
    fn label(&self) -> String {
        format!("{}[{} partitions] {}", self.name, self.partitions, SHUFFLE_MARK)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages() + 1
    }
}

impl<K, V, T, F> Lineage for ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + ByteSized + SpillRow + 'static,
    V: Clone + Send + Sync + ByteSized + SpillRow + 'static,
    T: Clone + Send + Sync + SpillRow + 'static,
    F: Fn(&mut dyn Iterator<Item = (K, V)>) -> Vec<T> + Send + Sync,
{
    fn plan(&self) -> PlanNode {
        let measured = self
            .stats
            .as_ref()
            .and_then(|s| s.stage_comm(self.stage_id))
            .map(|c| c.bytes);
        // The buckets store is the shuffle's materialization: its spill
        // picture is the one worth rendering. Predicted volume prefers
        // the measured stage bytes over size estimates.
        let est_bytes = measured.or_else(|| {
            up(&self.parent)
                .est_rows()
                .map(|r| r * std::mem::size_of::<(K, V)>() as u64)
        });
        PlanNode {
            id: self.lineage_id(),
            label: Op::label(self),
            kind: PlanKind::Shuffle {
                stage: self.stage_id,
                elided: false,
            },
            partitions: self.partitions,
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: measured,
            residency: self.buckets.residency(est_bytes),
            children: vec![up(&self.parent).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.parent));
    }
    fn est_rows(&self) -> Option<u64> {
        // Exact once every output partition's post has run; before that,
        // the parent's row count is an upper bound (posts only group or
        // reduce, never expand, in this engine's combinators).
        let done: Option<u64> = (0..self.partitions)
            .map(|p| self.posted.part_len(p).map(|rows| rows as u64))
            .sum();
        done.or_else(|| up(&self.parent).est_rows())
    }
}

/// A shuffle boundary the optimizer removed: the parent(s) are provably
/// hash-partitioned by the same seed and partition count the shuffle would
/// have routed with, so output partition `p` is exactly `post` applied to
/// the concatenation of each parent's partition `p` — the same input rows,
/// in the same order, a naive shuffle's bucket `p` would have received.
/// Zero records cross the boundary; the rewrite is a narrow per-partition
/// pass.
///
/// Co-partitioned joins are the multi-parent case: instead of unioning two
/// pre-tagged sides and re-shuffling, both sides' matching partitions feed
/// `post` directly (left's rows before right's, matching the union order
/// a naive plan shuffles).
pub(crate) struct ElidedShuffleOp<R, T, F> {
    pub parents: Vec<Arc<dyn Op<R>>>,
    pub partitions: usize,
    pub post: F,
    pub name: &'static str,
    pub stats: Option<Arc<ShuffleStats>>,
    /// Stage id the *naive* boundary would have carried — kept so plan
    /// reports can say which boundary disappeared.
    pub stage_id: u32,
    pub posted: PartitionStore<T>,
    /// Records the elision in [`ShuffleStats`] exactly once per op.
    pub noted: OnceLock<()>,
}

impl<R, T, F> Op<T> for ElidedShuffleOp<R, T, F>
where
    R: Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + SpillRow + 'static,
    F: Fn(&mut dyn Iterator<Item = R>) -> Vec<T> + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.partitions
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        take_rows(self.compute_partition_shared(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        self.posted.get_or_init(idx, || {
            self.noted.get_or_init(|| {
                if let Some(stats) = &self.stats {
                    stats.add_elided_shuffle();
                }
            });
            // Chain the parents' partition-`idx` cursors (left before
            // right, matching the union order a naive shuffle's bucket
            // receives) — a parent whose partition spilled streams rather
            // than rebuilds.
            for parent in &self.parents {
                debug_assert_eq!(parent.partitions(), self.partitions);
            }
            let mut rows = self
                .parents
                .iter()
                .flat_map(|parent| parent.stream_partition(idx));
            Arc::new((self.post)(&mut rows))
        })
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        for row in self.stream_partition(idx) {
            emit(row);
        }
    }
    fn stream_partition(&self, idx: usize) -> Box<dyn Iterator<Item = T> + '_> {
        if let Some(cursor) = self.posted.stream(idx) {
            return Box::new(cursor);
        }
        Box::new(take_rows(self.compute_partition_shared(idx)).into_iter())
    }
    fn label(&self) -> String {
        format!("{}[{} partitions] {}", self.name, self.partitions, ELIDED_MARK)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        for parent in &self.parents {
            explain_into(&**parent, indent, out);
        }
    }
    fn stages(&self) -> usize {
        // Not a stage boundary: nothing crosses it.
        self.parents.iter().map(|p| p.stages()).max().unwrap_or(1)
    }
}

impl<R, T, F> Lineage for ElidedShuffleOp<R, T, F>
where
    R: Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + SpillRow + 'static,
    F: Fn(&mut dyn Iterator<Item = R>) -> Vec<T> + Send + Sync,
{
    fn plan(&self) -> PlanNode {
        let est_bytes = Lineage::est_rows(self).map(|r| r * std::mem::size_of::<T>() as u64);
        PlanNode {
            id: self.lineage_id(),
            label: Op::label(self),
            kind: PlanKind::Shuffle {
                stage: self.stage_id,
                elided: true,
            },
            partitions: self.partitions,
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: self.posted.residency(est_bytes),
            children: self.parents.iter().map(|p| up(p).plan()).collect(),
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        for parent in &self.parents {
            visit(up(parent));
        }
    }
    fn est_rows(&self) -> Option<u64> {
        let done: Option<u64> = (0..self.partitions)
            .map(|p| self.posted.part_len(p).map(|rows| rows as u64))
            .sum();
        done.or_else(|| self.parents.iter().map(|p| up(p).est_rows()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn post_runs_once_per_partition_across_actions() {
        let rows: Vec<(u64, u64)> = (0..40).map(|i| (i % 5, i)).collect();
        let ds = Dataset::from_vec(rows, 4);
        let post_calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&post_calls);
        let partitions = 3;
        let op = ShuffleOp {
            parent: Arc::clone(&ds.op),
            partitions,
            post: move |bucket: &mut dyn Iterator<Item = (u64, u64)>| {
                c.fetch_add(1, Ordering::Relaxed);
                bucket.collect()
            },
            name: "Identity",
            stats: None,
            stage_id: crate::plan::next_stage_id(),
            buckets: PartitionStore::new(partitions, Default::default()),
            routed: OnceLock::new(),
            posted: PartitionStore::new(partitions, Default::default()),
            _marker: std::marker::PhantomData,
        };
        let first: Vec<Vec<(u64, u64)>> =
            (0..partitions).map(|p| op.compute_partition(p)).collect();
        assert_eq!(post_calls.load(Ordering::Relaxed), partitions as u64);
        // Repeated actions reuse the memoized post output: no new calls,
        // bit-identical rows, and the shared handle is the same allocation.
        for round in 0..3 {
            for (p, expected) in first.iter().enumerate() {
                assert_eq!(&op.compute_partition(p), expected, "round {round}");
                assert!(Arc::ptr_eq(
                    &op.compute_partition_shared(p),
                    &op.compute_partition_shared(p)
                ));
            }
        }
        assert_eq!(
            post_calls.load(Ordering::Relaxed),
            partitions as u64,
            "post memoized: clone+regroup paid once per partition"
        );
        let total: usize = first.iter().map(Vec::len).sum();
        assert_eq!(total, 40, "every row lands in exactly one bucket");
    }

    #[test]
    fn shuffle_reports_record_and_byte_volume() {
        let rows: Vec<(u64, u64)> = (0..32).map(|i| (i, i * 2)).collect();
        let ds = Dataset::from_vec(rows, 4);
        let stats = Arc::new(ShuffleStats::new());
        let op = ShuffleOp {
            parent: Arc::clone(&ds.op),
            partitions: 2,
            post: |bucket: &mut dyn Iterator<Item = (u64, u64)>| bucket.collect(),
            name: "Identity",
            stats: Some(Arc::clone(&stats)),
            stage_id: crate::plan::next_stage_id(),
            buckets: PartitionStore::new(2, Default::default()),
            routed: OnceLock::new(),
            posted: PartitionStore::new(2, Default::default()),
            _marker: std::marker::PhantomData,
        };
        op.compute_partition(0);
        op.compute_partition(1);
        assert_eq!(stats.shuffles(), 1, "materialized once");
        assert_eq!(stats.records(), 32);
        // Every (u64, u64) row is 16 bytes; all 32 cross the boundary.
        assert_eq!(stats.bytes(), 32 * 16);
        // The same traffic is attributed to this boundary's stage label.
        assert_eq!(
            stats.stage_comm(op.stage_id),
            Some(peachy_cluster::StageComm {
                records: 32,
                bytes: 32 * 16
            })
        );
        assert_eq!(stats.stages().len(), 1, "one labeled stage");
    }

    #[test]
    fn elided_shuffle_concatenates_matching_partitions() {
        // Two parents pretend to be co-partitioned; the elided boundary
        // must produce post(left_p ++ right_p) per partition and count one
        // elision, zero shuffles, zero records moved.
        let left = Dataset::from_vec(vec![(0u64, 1u64), (0, 2), (1, 3), (1, 4)], 2);
        let right = Dataset::from_vec(vec![(0u64, 10u64), (0, 20), (1, 30), (1, 40)], 2);
        let stats = Arc::new(ShuffleStats::new());
        let partitions = 2;
        let op = ElidedShuffleOp {
            parents: vec![Arc::clone(&left.op), Arc::clone(&right.op)],
            partitions,
            post: |rows: &mut dyn Iterator<Item = (u64, u64)>| rows.collect(),
            name: "Identity",
            stats: Some(Arc::clone(&stats)),
            stage_id: crate::plan::next_stage_id(),
            posted: PartitionStore::new(partitions, Default::default()),
            noted: OnceLock::new(),
        };
        assert_eq!(
            op.compute_partition(0),
            vec![(0, 1), (0, 2), (0, 10), (0, 20)],
            "left partition rows precede right partition rows"
        );
        assert_eq!(op.compute_partition(1), vec![(1, 3), (1, 4), (1, 30), (1, 40)]);
        op.compute_partition(0); // memoized replay
        assert_eq!(stats.shuffles_elided(), 1, "counted once per op");
        assert_eq!(stats.shuffles(), 0);
        assert_eq!(stats.records(), 0, "nothing crossed the boundary");
        assert_eq!(stats.bytes(), 0);
        assert_eq!(op.stages(), 1, "an elided shuffle is not a stage boundary");
        assert!(Op::label(&op).contains("shuffle elided"));
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&key, 7));
        }
    }

    #[test]
    fn partition_spreads_keys() {
        let mut counts = vec![0usize; 8];
        for key in 0..10_000u64 {
            counts[partition_of(&key, 8)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 800 && *max < 1800, "skewed: {counts:?}");
    }

    #[test]
    fn bucket_assignment_is_pinned() {
        // Version-stability contract: these exact placements must never
        // change (a compiler upgrade that moves them would silently
        // repartition every persisted pipeline). Computed once from the
        // seeded splitmix hasher and frozen here.
        let got: Vec<usize> = (0..16u64).map(|k| partition_of(&k, 8)).collect();
        assert_eq!(got, PINNED_U64_BUCKETS);
        let words = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
        let got: Vec<usize> = words.iter().map(|w| partition_of(w, 4)).collect();
        assert_eq!(got, PINNED_STR_BUCKETS);
    }

    /// `partition_of(&k, 8)` for `k in 0..16`.
    const PINNED_U64_BUCKETS: [usize; 16] =
        [0, 6, 1, 4, 5, 3, 3, 2, 6, 1, 2, 5, 2, 1, 4, 2];
    /// `partition_of(w, 4)` for the NATO words above.
    const PINNED_STR_BUCKETS: [usize; 6] = [1, 0, 2, 0, 3, 0];
}
