//! The shuffle: hash partitioning of keyed rows, materialized once.
//!
//! Wide transformations cannot pipeline — every output partition may need
//! rows from every input partition. Like Spark's shuffle files, the map
//! side here runs once (all input partitions in parallel, each bucketing
//! its rows by `hash(key) % partitions`) and the bucketed output is kept
//! for the reduce side to consume. [`ShuffleStats`] counts the records
//! crossing the boundary so pipelines can be *measured* while being
//! improved — the §4 exercise.
//!
//! The hash is the workspace's seeded version-stable hasher
//! ([`peachy_cluster::dist::owner_of_key`], built on the splitmix
//! finalizer), not `DefaultHasher`: bucket placement is pinned by test and
//! survives Rust releases.

use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use peachy_cluster::dist::{owner_of_key, ROUTE_SEED};
use rayon::prelude::*;

use crate::dataset::{explain_into, Op};

/// Counters shared by all shuffles in a lineage (attach one per pipeline
/// run to compare variants). This is the workspace-wide
/// [`peachy_cluster::CommStats`] block — the shuffle increments its
/// `records`/`shuffles` counters, so dataflow runs are directly comparable
/// with executor-backend runs in the E15 experiment.
pub type ShuffleStats = peachy_cluster::CommStats;

/// Stable key → partition routing, shared with the MapReduce collate
/// (same hasher, same [`ROUTE_SEED`]).
pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    owner_of_key(key, partitions, ROUTE_SEED)
}

/// The wide lineage node: hash-shuffles `(K, V)` rows into `partitions`
/// buckets, then applies `post` to each bucket (group, reduce, …).
pub(crate) struct ShuffleOp<K, V, T, F> {
    pub parent: Arc<dyn Op<(K, V)>>,
    pub partitions: usize,
    pub post: F,
    pub name: &'static str,
    pub stats: Option<Arc<ShuffleStats>>,
    pub materialized: OnceLock<Vec<Vec<(K, V)>>>,
    pub _marker: std::marker::PhantomData<fn() -> T>,
}

impl<K, V, T, F> ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + 'static,
    V: Clone + Send + Sync + 'static,
    F: Send + Sync,
{
    fn buckets(&self) -> &Vec<Vec<(K, V)>> {
        self.materialized.get_or_init(|| {
            // Map side: every parent partition bucketed in parallel.
            let per_input: Vec<Vec<Vec<(K, V)>>> = (0..self.parent.partitions())
                .into_par_iter()
                .map(|i| {
                    let rows = self.parent.compute_partition(i);
                    let mut buckets: Vec<Vec<(K, V)>> =
                        (0..self.partitions).map(|_| Vec::new()).collect();
                    for (k, v) in rows {
                        let p = partition_of(&k, self.partitions);
                        buckets[p].push((k, v));
                    }
                    buckets
                })
                .collect();
            // Merge per-input buckets, preserving input-partition order so
            // downstream grouping is deterministic.
            let mut merged: Vec<Vec<(K, V)>> = (0..self.partitions).map(|_| Vec::new()).collect();
            let mut moved = 0u64;
            for input in per_input {
                for (p, bucket) in input.into_iter().enumerate() {
                    moved += bucket.len() as u64;
                    merged[p].extend(bucket);
                }
            }
            if let Some(stats) = &self.stats {
                stats.add_shuffle(moved);
            }
            merged
        })
    }
}

impl<K, V, T, F> Op<T> for ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + 'static,
    V: Clone + Send + Sync + 'static,
    T: Send + Sync,
    F: Fn(Vec<(K, V)>) -> Vec<T> + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.partitions
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        (self.post)(self.buckets()[idx].clone())
    }
    fn label(&self) -> String {
        format!(
            "{}[{} partitions] === stage boundary (shuffle) ===",
            self.name, self.partitions
        )
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&key, 7));
        }
    }

    #[test]
    fn partition_spreads_keys() {
        let mut counts = vec![0usize; 8];
        for key in 0..10_000u64 {
            counts[partition_of(&key, 8)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 800 && *max < 1800, "skewed: {counts:?}");
    }

    #[test]
    fn bucket_assignment_is_pinned() {
        // Version-stability contract: these exact placements must never
        // change (a compiler upgrade that moves them would silently
        // repartition every persisted pipeline). Computed once from the
        // seeded splitmix hasher and frozen here.
        let got: Vec<usize> = (0..16u64).map(|k| partition_of(&k, 8)).collect();
        assert_eq!(got, PINNED_U64_BUCKETS);
        let words = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
        let got: Vec<usize> = words.iter().map(|w| partition_of(w, 4)).collect();
        assert_eq!(got, PINNED_STR_BUCKETS);
    }

    /// `partition_of(&k, 8)` for `k in 0..16`.
    const PINNED_U64_BUCKETS: [usize; 16] =
        [0, 6, 1, 4, 5, 3, 3, 2, 6, 1, 2, 5, 2, 1, 4, 2];
    /// `partition_of(w, 4)` for the NATO words above.
    const PINNED_STR_BUCKETS: [usize; 6] = [1, 0, 2, 0, 3, 0];
}
