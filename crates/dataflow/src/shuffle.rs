//! The shuffle: hash partitioning of keyed rows, materialized once.
//!
//! Wide transformations cannot pipeline — every output partition may need
//! rows from every input partition. Like Spark's shuffle files, the map
//! side here runs once (all input partitions in parallel, each bucketing
//! its rows by `hash(key) % partitions`) and the bucketed output is kept
//! for the reduce side to consume. [`ShuffleStats`] counts the records
//! crossing the boundary so pipelines can be *measured* while being
//! improved — the §4 exercise.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use rayon::prelude::*;

use crate::dataset::{explain_into, Op};

/// Counters shared by all shuffles in a lineage (attach one per pipeline
/// run to compare variants).
#[derive(Debug, Default)]
pub struct ShuffleStats {
    /// Records that crossed a shuffle boundary.
    pub records: AtomicU64,
    /// Number of shuffle materializations performed.
    pub shuffles: AtomicU64,
}

impl ShuffleStats {
    /// New zeroed counters.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records shuffled so far.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Shuffles executed so far.
    pub fn shuffles(&self) -> u64 {
        self.shuffles.load(Ordering::Relaxed)
    }
}

/// Stable key → partition routing.
pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// The wide lineage node: hash-shuffles `(K, V)` rows into `partitions`
/// buckets, then applies `post` to each bucket (group, reduce, …).
pub(crate) struct ShuffleOp<K, V, T, F> {
    pub parent: Arc<dyn Op<(K, V)>>,
    pub partitions: usize,
    pub post: F,
    pub name: &'static str,
    pub stats: Option<Arc<ShuffleStats>>,
    pub materialized: OnceLock<Vec<Vec<(K, V)>>>,
    pub _marker: std::marker::PhantomData<fn() -> T>,
}

impl<K, V, T, F> ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + 'static,
    V: Clone + Send + Sync + 'static,
    F: Send + Sync,
{
    fn buckets(&self) -> &Vec<Vec<(K, V)>> {
        self.materialized.get_or_init(|| {
            // Map side: every parent partition bucketed in parallel.
            let per_input: Vec<Vec<Vec<(K, V)>>> = (0..self.parent.partitions())
                .into_par_iter()
                .map(|i| {
                    let rows = self.parent.compute_partition(i);
                    let mut buckets: Vec<Vec<(K, V)>> =
                        (0..self.partitions).map(|_| Vec::new()).collect();
                    for (k, v) in rows {
                        let p = partition_of(&k, self.partitions);
                        buckets[p].push((k, v));
                    }
                    buckets
                })
                .collect();
            // Merge per-input buckets, preserving input-partition order so
            // downstream grouping is deterministic.
            let mut merged: Vec<Vec<(K, V)>> = (0..self.partitions).map(|_| Vec::new()).collect();
            let mut moved = 0u64;
            for input in per_input {
                for (p, bucket) in input.into_iter().enumerate() {
                    moved += bucket.len() as u64;
                    merged[p].extend(bucket);
                }
            }
            if let Some(stats) = &self.stats {
                stats.records.fetch_add(moved, Ordering::Relaxed);
                stats.shuffles.fetch_add(1, Ordering::Relaxed);
            }
            merged
        })
    }
}

impl<K, V, T, F> Op<T> for ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + 'static,
    V: Clone + Send + Sync + 'static,
    T: Send + Sync,
    F: Fn(Vec<(K, V)>) -> Vec<T> + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.partitions
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        (self.post)(self.buckets()[idx].clone())
    }
    fn label(&self) -> String {
        format!(
            "{}[{} partitions] === stage boundary (shuffle) ===",
            self.name, self.partitions
        )
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&key, 7));
        }
    }

    #[test]
    fn partition_spreads_keys() {
        let mut counts = vec![0usize; 8];
        for key in 0..10_000u64 {
            counts[partition_of(&key, 8)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 800 && *max < 1800, "skewed: {counts:?}");
    }
}
