//! The shuffle: hash partitioning of keyed rows, materialized once.
//!
//! Wide transformations cannot pipeline — every output partition may need
//! rows from every input partition. Like Spark's shuffle files, the map
//! side here runs once (all input partitions in parallel, each bucketing
//! its rows by `hash(key) % partitions`) and the bucketed output is kept
//! for the reduce side to consume. [`ShuffleStats`] counts the records
//! crossing the boundary so pipelines can be *measured* while being
//! improved — the §4 exercise.
//!
//! The hash is the workspace's seeded version-stable hasher
//! ([`peachy_cluster::dist::owner_of_key`], built on the splitmix
//! finalizer), not `DefaultHasher`: bucket placement is pinned by test and
//! survives Rust releases.

use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use peachy_cluster::dist::{owner_of_key, ROUTE_SEED};
use peachy_cluster::ByteSized;
use rayon::prelude::*;

use crate::dataset::{explain_into, take_rows, Op};

/// Counters shared by all shuffles in a lineage (attach one per pipeline
/// run to compare variants). This is the workspace-wide
/// [`peachy_cluster::CommStats`] block — the shuffle increments its
/// `records`/`shuffles` counters, so dataflow runs are directly comparable
/// with executor-backend runs in the E15 experiment.
pub type ShuffleStats = peachy_cluster::CommStats;

/// Stable key → partition routing, shared with the MapReduce collate
/// (same hasher, same [`ROUTE_SEED`]).
pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    owner_of_key(key, partitions, ROUTE_SEED)
}

/// One input partition's rows, bucketed by output partition.
type Bucketed<K, V> = Vec<Vec<(K, V)>>;

/// The wide lineage node: hash-shuffles `(K, V)` rows into `partitions`
/// buckets, then applies `post` to each bucket (group, reduce, …).
pub(crate) struct ShuffleOp<K, V, T, F> {
    pub parent: Arc<dyn Op<(K, V)>>,
    pub partitions: usize,
    pub post: F,
    pub name: &'static str,
    pub stats: Option<Arc<ShuffleStats>>,
    pub materialized: OnceLock<Vec<Vec<(K, V)>>>,
    /// Per-output-partition memo of `post`'s result: repeated actions on
    /// a shuffled dataset pay the bucket clone + regroup exactly once.
    pub posted: Vec<OnceLock<Arc<Vec<T>>>>,
    pub _marker: std::marker::PhantomData<fn() -> T>,
}

impl<K, V, T, F> ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + ByteSized + 'static,
    V: Clone + Send + Sync + ByteSized + 'static,
    F: Send + Sync,
{
    fn buckets(&self) -> &Vec<Vec<(K, V)>> {
        self.materialized.get_or_init(|| {
            // Map side: every parent partition bucketed in parallel, two
            // passes — route every row first, then fill exact-capacity
            // buckets, so no bucket ever reallocates mid-fill.
            let per_input: Vec<(Bucketed<K, V>, u64)> = (0..self.parent.partitions())
                .into_par_iter()
                .map(|i| {
                    let rows = take_rows(self.parent.compute_partition_shared(i));
                    let mut counts = vec![0usize; self.partitions];
                    let routes: Vec<u32> = rows
                        .iter()
                        .map(|(k, _)| {
                            let p = partition_of(k, self.partitions);
                            counts[p] += 1;
                            p as u32
                        })
                        .collect();
                    let mut buckets: Vec<Vec<(K, V)>> =
                        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
                    let mut bytes = 0u64;
                    for (row, p) in rows.into_iter().zip(routes) {
                        bytes += row.approx_bytes() as u64;
                        buckets[p as usize].push(row);
                    }
                    (buckets, bytes)
                })
                .collect();
            // Merge per-input buckets, preserving input-partition order so
            // downstream grouping is deterministic. Reduce-side targets are
            // also sized exactly before any row moves.
            let mut sizes = vec![0usize; self.partitions];
            for (input, _) in &per_input {
                for (p, bucket) in input.iter().enumerate() {
                    sizes[p] += bucket.len();
                }
            }
            let mut merged: Vec<Vec<(K, V)>> =
                sizes.iter().map(|&s| Vec::with_capacity(s)).collect();
            let mut moved = 0u64;
            let mut moved_bytes = 0u64;
            for (input, bytes) in per_input {
                moved_bytes += bytes;
                for (p, bucket) in input.into_iter().enumerate() {
                    moved += bucket.len() as u64;
                    merged[p].extend(bucket);
                }
            }
            if let Some(stats) = &self.stats {
                stats.add_shuffle(moved);
                stats.add_bytes(moved_bytes);
            }
            merged
        })
    }
}

impl<K, V, T, F> Op<T> for ShuffleOp<K, V, T, F>
where
    K: Clone + Send + Sync + Hash + Eq + ByteSized + 'static,
    V: Clone + Send + Sync + ByteSized + 'static,
    T: Clone + Send + Sync,
    F: Fn(Vec<(K, V)>) -> Vec<T> + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.partitions
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        (*self.compute_partition_shared(idx)).clone()
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        let posted = self.posted[idx]
            .get_or_init(|| Arc::new((self.post)(self.buckets()[idx].clone())));
        Arc::clone(posted)
    }
    fn label(&self) -> String {
        format!(
            "{}[{} partitions] === stage boundary (shuffle) ===",
            self.name, self.partitions
        )
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn post_runs_once_per_partition_across_actions() {
        let rows: Vec<(u64, u64)> = (0..40).map(|i| (i % 5, i)).collect();
        let ds = Dataset::from_vec(rows, 4);
        let post_calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&post_calls);
        let partitions = 3;
        let op = ShuffleOp {
            parent: Arc::clone(&ds.op),
            partitions,
            post: move |bucket: Vec<(u64, u64)>| {
                c.fetch_add(1, Ordering::Relaxed);
                bucket
            },
            name: "Identity",
            stats: None,
            materialized: OnceLock::new(),
            posted: (0..partitions).map(|_| OnceLock::new()).collect(),
            _marker: std::marker::PhantomData,
        };
        let first: Vec<Vec<(u64, u64)>> =
            (0..partitions).map(|p| op.compute_partition(p)).collect();
        assert_eq!(post_calls.load(Ordering::Relaxed), partitions as u64);
        // Repeated actions reuse the memoized post output: no new calls,
        // bit-identical rows, and the shared handle is the same allocation.
        for round in 0..3 {
            for (p, expected) in first.iter().enumerate() {
                assert_eq!(&op.compute_partition(p), expected, "round {round}");
                assert!(Arc::ptr_eq(
                    &op.compute_partition_shared(p),
                    &op.compute_partition_shared(p)
                ));
            }
        }
        assert_eq!(
            post_calls.load(Ordering::Relaxed),
            partitions as u64,
            "post memoized: clone+regroup paid once per partition"
        );
        let total: usize = first.iter().map(Vec::len).sum();
        assert_eq!(total, 40, "every row lands in exactly one bucket");
    }

    #[test]
    fn shuffle_reports_record_and_byte_volume() {
        let rows: Vec<(u64, u64)> = (0..32).map(|i| (i, i * 2)).collect();
        let ds = Dataset::from_vec(rows, 4);
        let stats = Arc::new(ShuffleStats::new());
        let op = ShuffleOp {
            parent: Arc::clone(&ds.op),
            partitions: 2,
            post: |bucket: Vec<(u64, u64)>| bucket,
            name: "Identity",
            stats: Some(Arc::clone(&stats)),
            materialized: OnceLock::new(),
            posted: (0..2).map(|_| OnceLock::new()).collect(),
            _marker: std::marker::PhantomData,
        };
        op.compute_partition(0);
        op.compute_partition(1);
        assert_eq!(stats.shuffles(), 1, "materialized once");
        assert_eq!(stats.records(), 32);
        // Every (u64, u64) row is 16 bytes; all 32 cross the boundary.
        assert_eq!(stats.bytes(), 32 * 16);
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&key, 7));
        }
    }

    #[test]
    fn partition_spreads_keys() {
        let mut counts = vec![0usize; 8];
        for key in 0..10_000u64 {
            counts[partition_of(&key, 8)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 800 && *max < 1800, "skewed: {counts:?}");
    }

    #[test]
    fn bucket_assignment_is_pinned() {
        // Version-stability contract: these exact placements must never
        // change (a compiler upgrade that moves them would silently
        // repartition every persisted pipeline). Computed once from the
        // seeded splitmix hasher and frozen here.
        let got: Vec<usize> = (0..16u64).map(|k| partition_of(&k, 8)).collect();
        assert_eq!(got, PINNED_U64_BUCKETS);
        let words = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
        let got: Vec<usize> = words.iter().map(|w| partition_of(w, 4)).collect();
        assert_eq!(got, PINNED_STR_BUCKETS);
    }

    /// `partition_of(&k, 8)` for `k in 0..16`.
    const PINNED_U64_BUCKETS: [usize; 16] =
        [0, 6, 1, 4, 5, 3, 3, 2, 6, 1, 2, 5, 2, 1, 4, 2];
    /// `partition_of(w, 4)` for the NATO words above.
    const PINNED_STR_BUCKETS: [usize; 6] = [1, 0, 2, 0, 3, 0];
}
