//! The cost-based plan optimizer: rewrite rules over the lineage DAG.
//!
//! Three rewrites, all on by default and all individually gated by
//! [`OptimizerConfig`]:
//!
//! 1. **Narrow-op fusion** — adjacent row-wise narrow ops (map / filter /
//!    flat_map) execute as one push-based pass per partition instead of N
//!    materialized intermediates. Decided at construction (each narrow op
//!    records whether it may fuse), executed via `Op::push_partition`.
//! 2. **Shuffle elision** — a shuffle whose input is provably already
//!    hash-partitioned by the same seed and partition count
//!    ([`Partitioning::satisfies`]) is replaced by a narrow per-partition
//!    pass: zero records cross the boundary. Decided at construction in
//!    `KeyedDataset`, which tracks [`Partitioning`] through narrow ops.
//! 3. **Auto-caching** — [`prepare_action`] runs at the start of every
//!    action, counts how often each cacheable node has been consumed, and
//!    arms an in-memory cache on nodes consumed more than once whose
//!    estimated recompute volume clears [`OptimizerConfig::auto_cache_min_bytes`]
//!    (estimates use measured per-stage bytes where a shuffle below has
//!    already run, `rows × size_of::<Row>()` otherwise).
//!
//! The contract: every rewrite is *semantically invisible* — optimized
//! plans produce bit-identical rows to naive plans (exact order for narrow
//! pipelines; up to the engine's existing per-partition grouping
//! nondeterminism for keyed posts, which hash-map group in both modes).
//! `tests/optimizer_equivalence.rs` pins this over randomly generated DAGs
//! on every executor backend.
//!
//! [`Partitioning`]: crate::plan::Partitioning
//! [`Partitioning::satisfies`]: crate::plan::Partitioning::satisfies

use std::collections::HashSet;
use std::fmt;

use crate::plan::{Lineage, PlanKind, PlanNode};

/// Which rewrites the optimizer may apply to a dataset's plan.
///
/// Carried by every `Dataset` and inherited by derived datasets; the
/// default enables everything. [`OptimizerConfig::naive`] turns every
/// rewrite off — the reference plan the equivalence suite compares against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Fuse adjacent row-wise narrow ops into one push-based pass.
    pub fuse: bool,
    /// Elide shuffles whose input partitioning already matches.
    pub elide_shuffles: bool,
    /// Arm in-memory caches on subtrees consumed by more than one action.
    pub auto_cache: bool,
    /// Minimum estimated recompute volume (bytes) before a shared subtree
    /// is worth holding in memory. Below this, recomputing is assumed
    /// cheaper than the cache's footprint.
    pub auto_cache_min_bytes: u64,
    /// Resident byte budget for every partition store the dataset builds
    /// (sources, caches, shuffle buckets, memoized posts). `None` keeps
    /// everything in RAM — exactly the pre-spill behavior.
    pub spill_budget: Option<u64>,
    /// Make the auto-cache cost model spill-aware: a subtree whose cache
    /// would blow the whole budget (and therefore wholly spill) charges
    /// replay-read bytes comparable to recomputing, so it is not armed —
    /// unless [`OptimizerConfig::stream_spills`] is on, in which case the
    /// spilled cache replays through the cursor at bounded memory and is
    /// still cheaper than recomputing an arbitrary upstream chain.
    pub charge_spill_reads: bool,
    /// Consume spilled partitions through the streaming cursor (the
    /// default): fused chains and shuffle passes pull decoded rows straight
    /// off the spill file instead of rebuilding the partition as one `Vec`.
    /// Off, every spilled read is a full rebuild — the measurable strawman
    /// E22 ablates against.
    pub stream_spills: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            fuse: true,
            elide_shuffles: true,
            auto_cache: true,
            auto_cache_min_bytes: 1024,
            spill_budget: None,
            charge_spill_reads: true,
            stream_spills: true,
        }
    }
}

impl OptimizerConfig {
    /// Every rewrite off: the reference configuration whose plans the
    /// optimizer must reproduce bit-identically.
    pub fn naive() -> Self {
        Self {
            fuse: false,
            elide_shuffles: false,
            auto_cache: false,
            auto_cache_min_bytes: u64::MAX,
            spill_budget: None,
            charge_spill_reads: false,
            stream_spills: false,
        }
    }
}

/// The runtime half of the optimizer: called at the start of every action.
///
/// Walks the lineage, bumps each cacheable node's lifetime consumption
/// count (a diamond consumes its shared subtree once per path), and arms
/// the auto-cache on nodes consumed ≥ 2 times whose estimated recompute
/// volume clears the configured threshold. Descent into an already-visited
/// node is skipped (counts stay linear in plan size), which undercounts
/// *descendants* of shared nodes — conservative, and harmless: once the
/// shared ancestor caches, its descendants recompute at most once anyway.
pub(crate) fn prepare_action(root: &dyn Lineage, cfg: &OptimizerConfig) {
    if !cfg.auto_cache {
        return;
    }
    let mut visited = HashSet::new();
    arm_walk(root, cfg, &mut visited);
}

fn arm_walk(node: &dyn Lineage, cfg: &OptimizerConfig, visited: &mut HashSet<usize>) {
    if let Some(total) = node.note_consumed() {
        if total >= 2 {
            // Worth caching: big enough to beat recomputation, but not so
            // big that the whole cache would spill under the byte budget —
            // a wholly spilled cache *rebuilt* from disk on every consumer
            // is priced like recomputing. With streaming on, a spilled
            // cache replays through the cursor at bounded memory (no
            // rebuild), so the cost model stops charging the full unspill
            // and arms it anyway.
            let worth = match node.est_cache_bytes() {
                None => true,
                Some(b) => {
                    b >= cfg.auto_cache_min_bytes
                        && !(cfg.charge_spill_reads
                            && !cfg.stream_spills
                            && cfg.spill_budget.is_some_and(|budget| b > budget))
                }
            };
            if worth {
                node.arm_auto_cache();
            }
        }
    }
    if !visited.insert(node.lineage_id()) {
        return;
    }
    node.lineage_children(&mut |child| arm_walk(child, cfg, visited));
}

/// What the optimizer did (and would have done) to one plan: rendered
/// naive and optimized trees plus the predicted shuffle volume of each.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The plan as it would run with [`OptimizerConfig::naive`].
    pub naive: String,
    /// The plan as it actually runs.
    pub optimized: String,
    /// Predicted bytes crossing shuffle boundaries in the naive plan
    /// (measured per-stage bytes where a stage has run, size estimates
    /// otherwise).
    pub predicted_naive_shuffle_bytes: u64,
    /// Predicted shuffle bytes after elision.
    pub predicted_optimized_shuffle_bytes: u64,
    /// Fused runs of ≥ 2 narrow ops (each run is one pass instead of N).
    pub fused_runs: usize,
    /// Shuffle boundaries removed by elision.
    pub elided_shuffles: usize,
    /// Nodes whose auto-cache the runtime pass has armed so far.
    pub auto_cached: usize,
    /// The resident byte budget in force, if any node holds its partitions
    /// in a budgeted store (`None` means everything runs in RAM).
    pub spill_budget: Option<u64>,
    /// Partitions the plan's stores have spilled to disk so far.
    pub spilled_parts: usize,
    /// Encoded bytes those spills wrote.
    pub spilled_bytes: u64,
    /// Estimated bytes that will spill in stores that have not filled yet.
    pub predicted_spill_bytes: u64,
    /// Nodes whose spilled partitions are consumed through the streaming
    /// cursor (never rebuilt as one `Vec`) rather than rebuilt on access.
    pub streamed_nodes: usize,
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "naive plan:")?;
        write!(f, "{}", self.naive)?;
        writeln!(f, "optimized plan:")?;
        write!(f, "{}", self.optimized)?;
        writeln!(
            f,
            "predicted shuffle bytes: {} naive -> {} optimized",
            self.predicted_naive_shuffle_bytes, self.predicted_optimized_shuffle_bytes
        )?;
        writeln!(
            f,
            "rewrites: {} fused narrow run(s), {} shuffle(s) elided, {} subtree(s) auto-cached",
            self.fused_runs, self.elided_shuffles, self.auto_cached
        )?;
        if let Some(budget) = self.spill_budget {
            writeln!(
                f,
                "residency: budget {budget} B, {} part(s) / {} B spilled, {} B predicted to spill, {} node(s) streamed",
                self.spilled_parts, self.spilled_bytes, self.predicted_spill_bytes,
                self.streamed_nodes
            )?;
        }
        Ok(())
    }
}

/// Build the optimizer report for a plan rooted at `root`.
pub(crate) fn report_for(root: &dyn Lineage) -> PlanReport {
    let plan = root.plan();

    let mut naive = String::new();
    render(&plan, 0, false, &mut naive);
    let mut optimized = String::new();
    render(&plan, 0, true, &mut optimized);

    let mut naive_bytes = 0u64;
    let mut optimized_bytes = 0u64;
    let mut elided = 0usize;
    let mut auto_cached = 0usize;
    let mut spill_budget = None;
    let mut spilled_parts = 0usize;
    let mut spilled_bytes = 0u64;
    let mut predicted_spill_bytes = 0u64;
    let mut streamed_nodes = 0usize;
    plan.walk(&mut |node| {
        match node.residency {
            Some(crate::store::Residency::Mem { budget }) => {
                spill_budget.get_or_insert(budget);
            }
            Some(crate::store::Residency::Spill {
                budget,
                spilled_parts: parts,
                spilled_bytes: bytes,
                predicted_bytes,
            }) => {
                spill_budget = Some(budget);
                spilled_parts += parts;
                spilled_bytes += bytes;
                predicted_spill_bytes += predicted_bytes;
            }
            Some(crate::store::Residency::Stream {
                budget,
                spilled_parts: parts,
                spilled_bytes: bytes,
                predicted_bytes,
            }) => {
                spill_budget = Some(budget);
                spilled_parts += parts;
                spilled_bytes += bytes;
                predicted_spill_bytes += predicted_bytes;
                streamed_nodes += 1;
            }
            None => {}
        }
        if let PlanKind::Shuffle { elided: e, .. } = node.kind {
            let cost = shuffle_cost(node);
            naive_bytes += cost;
            if e {
                elided += 1;
            } else {
                optimized_bytes += cost;
            }
        }
        if let PlanKind::Narrow {
            auto_cached: true, ..
        } = node.kind
        {
            auto_cached += 1;
        }
    });

    PlanReport {
        naive,
        optimized,
        predicted_naive_shuffle_bytes: naive_bytes,
        predicted_optimized_shuffle_bytes: optimized_bytes,
        fused_runs: count_fused_runs(&plan),
        elided_shuffles: elided,
        auto_cached,
        spill_budget,
        spilled_parts,
        spilled_bytes,
        predicted_spill_bytes,
        streamed_nodes,
    }
}

/// Bytes a shuffle boundary moves: the node's measured stage bytes when
/// the stage has run, otherwise the estimated size of its inputs.
fn shuffle_cost(node: &PlanNode) -> u64 {
    if let Some(measured) = node.measured_bytes {
        return measured;
    }
    node.children
        .iter()
        .map(|c| c.est_bytes().unwrap_or(0))
        .sum()
}

/// Count maximal parent→child runs of ≥ 2 fusable narrow nodes.
fn count_fused_runs(plan: &PlanNode) -> usize {
    fn is_fusable(node: &PlanNode) -> bool {
        matches!(
            node.kind,
            PlanKind::Narrow {
                fused: true,
                auto_cached: false,
                ..
            }
        )
    }
    let mut runs = 0usize;
    let mut walk = |node: &PlanNode| {
        // A run starts at a fusable node whose (single) child is fusable
        // too; count it once at its top.
        if is_fusable(node) && node.children.len() == 1 && is_fusable(&node.children[0]) {
            runs += 1;
        }
        // Interior members of a run must not start a new one.
        if is_fusable(node) {
            if let [child] = node.children.as_slice() {
                if is_fusable(child) && child.children.len() == 1 && is_fusable(&child.children[0])
                {
                    runs -= 1;
                }
            }
        }
    };
    plan.walk(&mut walk);
    runs
}

/// Render a plan tree. In optimized mode, runs of fusable narrow nodes
/// collapse into one `Fused[...]` line and elided shuffles keep their
/// elision marker; in naive mode every node prints separately and elided
/// shuffles print as the stage boundary they would have been.
fn render(node: &PlanNode, indent: usize, optimized: bool, out: &mut String) {
    let pad = |out: &mut String, indent: usize| {
        for _ in 0..indent {
            out.push_str("  ");
        }
    };

    // Collapse a fused run (optimized mode only).
    if optimized {
        let fusable = |n: &PlanNode| {
            matches!(
                n.kind,
                PlanKind::Narrow {
                    fused: true,
                    auto_cached: false,
                    ..
                }
            )
        };
        if fusable(node) && node.children.len() == 1 && fusable(&node.children[0]) {
            let mut labels = vec![node.label.clone()];
            let mut cursor = &node.children[0];
            while fusable(cursor) && cursor.children.len() == 1 && fusable(&cursor.children[0]) {
                labels.push(cursor.label.clone());
                cursor = &cursor.children[0];
            }
            labels.push(cursor.label.clone());
            pad(out, indent);
            out.push_str("Fused[");
            out.push_str(&labels.join(" <- "));
            out.push_str("]\n");
            for child in &cursor.children {
                render(child, indent + 1, optimized, out);
            }
            return;
        }
    }

    pad(out, indent);
    let label = if optimized {
        node.label.clone()
    } else {
        naive_label(node)
    };
    out.push_str(&label);
    if optimized {
        if let PlanKind::Narrow {
            auto_cached: true,
            consumed,
            ..
        } = node.kind
        {
            out.push_str(&format!(" [auto-cached, consumed x{consumed}]"));
        }
    }
    // Residency renders in both modes: the budget applies to the naive
    // plan's holders just the same.
    match node.residency {
        Some(crate::store::Residency::Mem { .. }) => out.push_str(" [mem]"),
        Some(crate::store::Residency::Spill {
            budget,
            spilled_parts,
            spilled_bytes,
            predicted_bytes,
        }) => {
            out.push_str(&format!(
                " [spill@{budget}B: {spilled_parts} part(s)/{spilled_bytes} B spilled, pred {predicted_bytes} B]"
            ));
        }
        Some(crate::store::Residency::Stream {
            budget,
            spilled_parts,
            spilled_bytes,
            predicted_bytes,
        }) => {
            out.push_str(&format!(
                " [stream@{budget}B: {spilled_parts} part(s)/{spilled_bytes} B spilled, pred {predicted_bytes} B]"
            ));
        }
        None => {}
    }
    out.push('\n');
    for child in &node.children {
        render(child, indent + 1, optimized, out);
    }
}

/// The label this node would carry in a naive plan (elision undone).
fn naive_label(node: &PlanNode) -> String {
    if let PlanKind::Shuffle { elided: true, .. } = node.kind {
        return node
            .label
            .replace(crate::plan::ELIDED_MARK, crate::plan::SHUFFLE_MARK);
    }
    node.label.clone()
}
