//! Keyed datasets and wide transformations.
//!
//! A [`KeyedDataset<K, V>`] wraps a `Dataset<(K, V)>` and unlocks the
//! shuffle-backed operations of the §4 pipelines: per-key reduction,
//! grouping, counting, and joins (inner and left-outer — the arrests ⋈
//! population join of Figure 2 is a left join on NTA code).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use peachy_cluster::dist::ROUTE_SEED;
use peachy_cluster::{ByteSized, Executor};

use crate::dataset::Dataset;
use crate::optimize::PlanReport;
use crate::plan::{next_stage_id, Partitioning};
use crate::shuffle::{ElidedShuffleOp, ShuffleOp, ShuffleStats};
use crate::store::{PartitionStore, SpillReader, SpillRow};

/// A dataset of key–value rows supporting wide transformations.
///
/// Alongside the rows, a `KeyedDataset` tracks what it *knows* about their
/// [`Partitioning`]: every hash shuffle leaves its output `HashKeyed` by
/// the routing seed and partition count, and key-preserving narrow ops
/// (`map_values`, `filter_keys`) carry that fact forward. A downstream
/// shuffle whose routing the current layout already
/// [`satisfies`](Partitioning::satisfies) is **elided** — rewritten into a
/// narrow per-partition pass that moves zero records.
pub struct KeyedDataset<K, V> {
    inner: Dataset<(K, V)>,
    stats: Option<Arc<ShuffleStats>>,
    partitioning: Partitioning,
}

impl<K, V> Clone for KeyedDataset<K, V> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            stats: self.stats.clone(),
            partitioning: self.partitioning,
        }
    }
}

impl<K, V> KeyedDataset<K, V>
where
    K: Clone + Send + Sync + Hash + Eq + SpillRow + 'static,
    V: Clone + Send + Sync + SpillRow + 'static,
{
    /// Wrap an existing `(K, V)` dataset (layout unknown: no elision until
    /// a shuffle establishes one).
    pub fn from_dataset(inner: Dataset<(K, V)>) -> Self {
        Self {
            inner,
            stats: None,
            partitioning: Partitioning::Arbitrary,
        }
    }

    /// Attach shuffle counters (shared across derived datasets) so a
    /// pipeline's communication volume can be measured. The same block
    /// also meters spill traffic: stores built downstream charge their
    /// disk writes and read-backs to it.
    pub fn with_stats(mut self, stats: Arc<ShuffleStats>) -> Self {
        self.inner = self.inner.with_stats(Arc::clone(&stats));
        self.stats = Some(stats);
        self
    }

    /// What this dataset knows about how its rows are laid out.
    pub fn partitioning(&self) -> Partitioning {
        self.partitioning
    }

    /// Assert that the rows are already hash-partitioned by `seed` into
    /// `partitions` buckets (`owner_of_key(key, partitions, seed)` placed
    /// every row) — e.g. data reloaded from a previous run's shuffled
    /// output. The optimizer trusts the claim to elide matching shuffles;
    /// a *false* claim silently mis-groups keys, so this is a performance
    /// assertion, not a hint. Claims that don't match a downstream
    /// shuffle's seed and count are ignored (the shuffle runs for real).
    pub fn assume_hash_partitioned(mut self, seed: u64, partitions: usize) -> Self {
        assert_eq!(
            self.inner.num_partitions(),
            partitions,
            "claimed partition count must match the actual layout"
        );
        self.partitioning = Partitioning::HashKeyed { seed, partitions };
        self
    }

    /// The underlying `(K, V)` dataset (narrow view).
    pub fn rows(&self) -> Dataset<(K, V)> {
        self.inner.clone()
    }

    /// Narrow: transform values, keep keys. Keys don't move, so the known
    /// partitioning survives.
    pub fn map_values<W, F>(&self, f: F) -> KeyedDataset<K, W>
    where
        W: Clone + Send + Sync + SpillRow + 'static,
        F: Fn(V) -> W + Send + Sync + 'static,
    {
        KeyedDataset {
            inner: self.inner.map(move |(k, v)| (k, f(v))),
            stats: self.stats.clone(),
            partitioning: self.partitioning,
        }
    }

    /// Narrow: keep rows whose key satisfies the predicate (a subset of a
    /// hash-partitioned layout is still hash-partitioned).
    pub fn filter_keys<F>(&self, pred: F) -> KeyedDataset<K, V>
    where
        F: Fn(&K) -> bool + Send + Sync + 'static,
    {
        KeyedDataset {
            inner: self.inner.filter(move |(k, _)| pred(k)),
            stats: self.stats.clone(),
            partitioning: self.partitioning,
        }
    }

    /// Should a shuffle routing into `partitions` buckets be elided for
    /// this dataset's layout?
    fn elides(&self, partitions: usize) -> bool {
        self.inner.optimizer_config().elide_shuffles
            && self.partitioning.satisfies(ROUTE_SEED, partitions)
    }

    fn shuffle_with<T, F>(&self, name: &'static str, partitions: usize, post: F) -> Dataset<T>
    where
        K: ByteSized,
        V: ByteSized,
        T: Clone + Send + Sync + SpillRow + 'static,
        F: Fn(&mut dyn Iterator<Item = (K, V)>) -> Vec<T> + Send + Sync + 'static,
    {
        let cfg = self.inner.store_cfg();
        if self.elides(partitions) {
            // Every key in partition p already routes to p: bucket p of a
            // real shuffle would hold exactly partition p's rows, in the
            // same order (one contributing input partition). Run `post`
            // per partition and move nothing.
            return Dataset {
                op: Arc::new(ElidedShuffleOp {
                    parents: vec![Arc::clone(&self.inner.op)],
                    partitions,
                    post,
                    name,
                    stats: self.stats.clone(),
                    stage_id: next_stage_id(),
                    posted: PartitionStore::new(partitions, cfg),
                    noted: OnceLock::new(),
                }),
                opt: self.inner.opt,
                stats: self.inner.stats.clone(),
            };
        }
        Dataset {
            op: Arc::new(ShuffleOp {
                parent: Arc::clone(&self.inner.op),
                partitions,
                post,
                name,
                stats: self.stats.clone(),
                stage_id: next_stage_id(),
                buckets: PartitionStore::new(partitions, cfg.clone()),
                routed: OnceLock::new(),
                posted: PartitionStore::new(partitions, cfg),
                _marker: std::marker::PhantomData,
            }),
            opt: self.inner.opt,
            stats: self.inner.stats.clone(),
        }
    }

    /// Wide: merge all values of each key with an associative operator.
    ///
    /// Performs **map-side combining** first (values co-located in an input
    /// partition merge before the shuffle), so the shuffle moves at most
    /// one record per (input partition, key) — the optimization the course
    /// asks students to discover.
    pub fn reduce_by_key<F>(&self, f: F) -> KeyedDataset<K, V>
    where
        K: ByteSized,
        V: ByteSized,
        F: Fn(V, V) -> V + Send + Sync + Clone + 'static,
    {
        let partitions = self.inner.num_partitions();
        // Map-side combine as a narrow per-partition op... combining needs
        // the whole partition, so express it as a shuffle of pre-combined
        // partitions: first a narrow pass that merges within partitions.
        let g = f.clone();
        let combined = self.combine_within_partitions(g);
        let post = move |bucket: &mut dyn Iterator<Item = (K, V)>| {
            let mut merged: HashMap<K, V> = HashMap::new();
            for (k, v) in bucket {
                match merged.remove(&k) {
                    Some(prev) => {
                        let newv = f(prev, v);
                        merged.insert(k, newv);
                    }
                    None => {
                        merged.insert(k, v);
                    }
                }
            }
            merged.into_iter().collect::<Vec<(K, V)>>()
        };
        KeyedDataset {
            inner: combined.shuffle_with("ReduceByKey", partitions, post),
            stats: self.stats.clone(),
            partitioning: Partitioning::HashKeyed {
                seed: ROUTE_SEED,
                partitions,
            },
        }
    }

    /// Wide: Spark's `aggregateByKey` — accumulate values of type `V` into
    /// accumulators of a *different* type `A`, with map-side combining:
    /// `seq` folds a value into an accumulator within a partition, `comb`
    /// merges accumulators across partitions. `reduce_by_key` is the
    /// special case `A = V`.
    pub fn aggregate_by_key<A, S, C>(&self, zero: A, seq: S, comb: C) -> KeyedDataset<K, A>
    where
        K: ByteSized,
        A: Clone + Send + Sync + ByteSized + SpillRow + 'static,
        S: Fn(A, V) -> A + Send + Sync + 'static,
        C: Fn(A, A) -> A + Send + Sync + 'static,
    {
        let partitions = self.inner.num_partitions();
        // Map side: fold each partition's values into per-key accumulators.
        let z = zero.clone();
        let combined: KeyedDataset<K, A> = KeyedDataset {
            inner: self.inner.map_partitions(move |rows| {
                let mut accs: HashMap<K, A> = HashMap::new();
                for (k, v) in rows {
                    let acc = accs.remove(&k).unwrap_or_else(|| z.clone());
                    let acc = seq(acc, v);
                    accs.insert(k, acc);
                }
                accs.into_iter().collect()
            }),
            stats: self.stats.clone(),
            // Per-partition folding keeps every key where it was.
            partitioning: self.partitioning,
        };
        // Reduce side: merge accumulators.
        let post = move |bucket: &mut dyn Iterator<Item = (K, A)>| {
            let mut merged: HashMap<K, A> = HashMap::new();
            for (k, a) in bucket {
                match merged.remove(&k) {
                    Some(prev) => {
                        let next = comb(prev, a);
                        merged.insert(k, next);
                    }
                    None => {
                        merged.insert(k, a);
                    }
                }
            }
            merged.into_iter().collect::<Vec<(K, A)>>()
        };
        KeyedDataset {
            inner: combined.shuffle_with("AggregateByKey", partitions, post),
            stats: self.stats.clone(),
            partitioning: Partitioning::HashKeyed {
                seed: ROUTE_SEED,
                partitions,
            },
        }
    }

    /// Wide: `foldByKey` — aggregate with a single operator and a zero.
    pub fn fold_by_key<F>(&self, zero: V, f: F) -> KeyedDataset<K, V>
    where
        K: ByteSized,
        V: ByteSized,
        F: Fn(V, V) -> V + Send + Sync + Clone + 'static,
    {
        let g = f.clone();
        self.aggregate_by_key(zero, f, g)
    }

    /// Wide (no combiner): group all values per key.
    pub fn group_by_key(&self) -> KeyedDataset<K, Vec<V>>
    where
        K: ByteSized,
        V: ByteSized,
    {
        let partitions = self.inner.num_partitions();
        let post = move |bucket: &mut dyn Iterator<Item = (K, V)>| {
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in bucket {
                groups.entry(k).or_default().push(v);
            }
            groups.into_iter().collect::<Vec<(K, Vec<V>)>>()
        };
        KeyedDataset {
            inner: self.shuffle_with("GroupByKey", partitions, post),
            stats: self.stats.clone(),
            partitioning: Partitioning::HashKeyed {
                seed: ROUTE_SEED,
                partitions,
            },
        }
    }

    /// Wide: count rows per key (reduce_by_key over 1s).
    pub fn count_by_key(&self) -> KeyedDataset<K, u64>
    where
        K: ByteSized,
    {
        self.map_values(|_| 1u64).reduce_by_key(|a, b| a + b)
    }

    /// Build the shuffle (or elided pass) behind a join: both sides
    /// tagged, routed into `partitions` buckets, `post` applied per
    /// bucket. When *both* sides are provably co-partitioned to match the
    /// routing, the boundary is elided with a two-parent pass: output
    /// partition `p` is `post(left_p ++ right_p)` — exactly the rows, in
    /// exactly the order, that bucket `p` of the naive tag-union shuffle
    /// would receive (each side's partition `p` is that bucket's only
    /// contributor, and left input partitions precede right ones in the
    /// union).
    fn join_shuffle<W, T, F>(
        &self,
        name: &'static str,
        other: &KeyedDataset<K, W>,
        partitions: usize,
        post: F,
    ) -> Dataset<T>
    where
        K: ByteSized,
        V: ByteSized,
        W: Clone + Send + Sync + ByteSized + SpillRow + 'static,
        T: Clone + Send + Sync + SpillRow + 'static,
        F: Fn(&mut dyn Iterator<Item = (K, Either<V, W>)>) -> Vec<T> + Send + Sync + 'static,
    {
        if self.elides(partitions) && other.elides(partitions) {
            let left = self.inner.map(|(k, v)| (k, Either::Left(v)));
            let right = other.inner.map(|(k, w)| (k, Either::Right(w)));
            return Dataset {
                op: Arc::new(ElidedShuffleOp {
                    parents: vec![left.op, right.op],
                    partitions,
                    post,
                    name,
                    stats: self.stats.clone(),
                    stage_id: next_stage_id(),
                    posted: PartitionStore::new(partitions, self.inner.store_cfg()),
                    noted: OnceLock::new(),
                }),
                opt: self.inner.opt,
                stats: self.inner.stats.clone(),
            };
        }
        self.tag_union(other).shuffle_with(name, partitions, post)
    }

    /// Wide: inner join with another keyed dataset — every (v, w) pair for
    /// matching keys.
    pub fn join<W>(&self, other: &KeyedDataset<K, W>) -> KeyedDataset<K, (V, W)>
    where
        K: ByteSized,
        V: ByteSized,
        W: Clone + Send + Sync + ByteSized + SpillRow + 'static,
    {
        let partitions = self
            .inner
            .num_partitions()
            .max(other.inner.num_partitions());
        let post = move |bucket: &mut dyn Iterator<Item = (K, Either<V, W>)>| {
            let (lefts, rights) = split_sides(bucket);
            let mut out = Vec::new();
            for (k, vs) in lefts {
                if let Some(ws) = rights.get(&k) {
                    for v in &vs {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
            }
            out
        };
        KeyedDataset {
            inner: self.join_shuffle("Join", other, partitions, post),
            stats: self.stats.clone(),
            partitioning: Partitioning::HashKeyed {
                seed: ROUTE_SEED,
                partitions,
            },
        }
    }

    /// Wide: left-outer join — every left row appears, with `None` where
    /// the right side has no match.
    pub fn left_join<W>(&self, other: &KeyedDataset<K, W>) -> KeyedDataset<K, (V, Option<W>)>
    where
        K: ByteSized,
        V: ByteSized,
        W: Clone + Send + Sync + ByteSized + SpillRow + 'static,
    {
        let partitions = self
            .inner
            .num_partitions()
            .max(other.inner.num_partitions());
        let post = move |bucket: &mut dyn Iterator<Item = (K, Either<V, W>)>| {
            let (lefts, rights) = split_sides(bucket);
            let mut out = Vec::new();
            for (k, vs) in lefts {
                match rights.get(&k) {
                    Some(ws) => {
                        for v in &vs {
                            for w in ws {
                                out.push((k.clone(), (v.clone(), Some(w.clone()))));
                            }
                        }
                    }
                    None => {
                        for v in vs {
                            out.push((k.clone(), (v, None)));
                        }
                    }
                }
            }
            out
        };
        KeyedDataset {
            inner: self.join_shuffle("LeftJoin", other, partitions, post),
            stats: self.stats.clone(),
            partitioning: Partitioning::HashKeyed {
                seed: ROUTE_SEED,
                partitions,
            },
        }
    }

    /// Narrow join: **broadcast hash join**. The (small) `other` side is
    /// materialized once and handed to every partition of `self`, so the
    /// big side never crosses a shuffle — Spark's broadcast-join
    /// optimization, the right plan when joining a fact table against a
    /// small dimension table (e.g. arrests ⋈ population in the §4
    /// pipeline). Semantics identical to [`KeyedDataset::join`] up to
    /// output order.
    pub fn broadcast_join<W>(&self, other: &KeyedDataset<K, W>) -> KeyedDataset<K, (V, W)>
    where
        W: Clone + Send + Sync + SpillRow + 'static,
    {
        let table: std::sync::Arc<HashMap<K, Vec<W>>> = {
            let mut m: HashMap<K, Vec<W>> = HashMap::new();
            for (k, w) in other.inner.collect() {
                m.entry(k).or_default().push(w);
            }
            std::sync::Arc::new(m)
        };
        let inner = self.inner.flat_map(move |(k, v)| {
            let matches: Vec<(K, (V, W))> = match table.get(&k) {
                Some(ws) => ws
                    .iter()
                    .map(|w| (k.clone(), (v.clone(), w.clone())))
                    .collect(),
                None => Vec::new(),
            };
            matches
        });
        KeyedDataset {
            inner,
            stats: self.stats.clone(),
            // The big side's rows never move; keys are unchanged.
            partitioning: self.partitioning,
        }
    }

    /// Action: collect as `(K, V)` pairs.
    pub fn collect(&self) -> Vec<(K, V)> {
        self.inner.collect()
    }

    /// Action: collect into a hash map (later duplicates win).
    pub fn collect_map(&self) -> HashMap<K, V> {
        self.inner.collect().into_iter().collect()
    }

    /// Action: row count.
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Action: collect scheduled by a cluster-layer [`Executor`].
    pub fn collect_with(&self, exec: &Executor) -> Vec<(K, V)>
    where
        K: ByteSized,
        V: ByteSized,
    {
        self.inner.collect_with(exec)
    }

    /// Action: count scheduled by a cluster-layer [`Executor`].
    pub fn count_with(&self, exec: &Executor) -> usize {
        self.inner.count_with(exec)
    }

    /// Lineage plan of the underlying dataset.
    pub fn explain(&self) -> String {
        self.inner.explain()
    }

    /// The optimizer's naive-vs-optimized view of the underlying plan.
    pub fn explain_plans(&self) -> PlanReport {
        self.inner.explain_plans()
    }

    // -- internals --

    /// Merge values per key *within* each partition (narrow).
    fn combine_within_partitions<F>(&self, f: F) -> KeyedDataset<K, V>
    where
        F: Fn(V, V) -> V + Send + Sync + 'static,
    {
        // flat_map over whole partitions is not expressible with row-wise
        // narrow ops; emulate with a per-partition shuffle-free pass via
        // group-in-partition: use repartition-free trick — map each row
        // into a singleton map and merge... Simplest correct approach:
        // mapPartitions. We add it as a dedicated narrow op on Dataset.
        KeyedDataset {
            inner: self.inner.map_partitions(move |rows| {
                let mut merged: HashMap<K, V> = HashMap::new();
                for (k, v) in rows {
                    match merged.remove(&k) {
                        Some(prev) => {
                            let newv = f(prev, v);
                            merged.insert(k, newv);
                        }
                        None => {
                            merged.insert(k, v);
                        }
                    }
                }
                merged.into_iter().collect()
            }),
            stats: self.stats.clone(),
            // Per-partition merging keeps every key where it was.
            partitioning: self.partitioning,
        }
    }

    /// Union of self (tagged Left) and other (tagged Right).
    fn tag_union<W>(&self, other: &KeyedDataset<K, W>) -> KeyedDataset<K, Either<V, W>>
    where
        W: Clone + Send + Sync + SpillRow + 'static,
    {
        let left = self.inner.map(|(k, v)| (k, Either::Left(v)));
        let right = other.inner.map(|(k, w)| (k, Either::Right(w)));
        KeyedDataset {
            inner: left.union_with(&right),
            stats: self.stats.clone(),
            // Concatenation shifts the right side's partition indices:
            // even two co-partitioned inputs stop satisfying any routing.
            partitioning: Partitioning::Arbitrary,
        }
    }
}

/// Two-sided tagged value used by joins.
#[derive(Debug, Clone, PartialEq)]
pub enum Either<L, R> {
    /// Left-side value.
    Left(L),
    /// Right-side value.
    Right(R),
}

impl<L: ByteSized, R: ByteSized> ByteSized for Either<L, R> {
    fn approx_bytes(&self) -> usize {
        match self {
            Either::Left(l) => l.approx_bytes(),
            Either::Right(r) => r.approx_bytes(),
        }
    }
}

impl<L: SpillRow, R: SpillRow> SpillRow for Either<L, R> {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        match self {
            Either::Left(l) => {
                out.push(0);
                l.spill_encode(out);
            }
            Either::Right(r) => {
                out.push(1);
                r.spill_encode(out);
            }
        }
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        match r.read_array::<1>()[0] {
            0 => Either::Left(L::spill_decode(r)),
            1 => Either::Right(R::spill_decode(r)),
            tag => panic!("invalid Either tag in spill stream: {tag}"),
        }
    }
}

/// Split a joined bucket into per-key left values (insertion-ordered) and
/// right values.
type SplitSides<K, V, W> = (Vec<(K, Vec<V>)>, HashMap<K, Vec<W>>);

fn split_sides<K: Hash + Eq + Clone, V, W>(
    bucket: impl Iterator<Item = (K, Either<V, W>)>,
) -> SplitSides<K, V, W> {
    let mut lefts: Vec<(K, Vec<V>)> = Vec::new();
    let mut left_index: HashMap<K, usize> = HashMap::new();
    let mut rights: HashMap<K, Vec<W>> = HashMap::new();
    for (k, e) in bucket {
        match e {
            Either::Left(v) => match left_index.get(&k) {
                Some(&i) => lefts[i].1.push(v),
                None => {
                    left_index.insert(k.clone(), lefts.len());
                    lefts.push((k, vec![v]));
                }
            },
            Either::Right(w) => rights.entry(k).or_default().push(w),
        }
    }
    (lefts, rights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(pairs: Vec<(&'static str, i64)>, parts: usize) -> KeyedDataset<&'static str, i64> {
        KeyedDataset::from_dataset(Dataset::from_vec(pairs, parts))
    }

    #[test]
    fn reduce_by_key_sums() {
        let ds = kv(vec![("a", 1), ("b", 2), ("a", 3), ("c", 4), ("a", 5)], 3);
        let mut out = ds.reduce_by_key(|x, y| x + y).collect();
        out.sort();
        assert_eq!(out, vec![("a", 9), ("b", 2), ("c", 4)]);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let ds = kv(vec![("a", 1), ("a", 2), ("b", 3)], 2);
        let mut out = ds.group_by_key().collect();
        out.sort();
        // Values arrive in input-partition order.
        assert_eq!(out, vec![("a", vec![1, 2]), ("b", vec![3])]);
    }

    #[test]
    fn aggregate_by_key_changes_type() {
        // Per-key mean: accumulate (sum, count), finish on collect.
        let ds = kv(vec![("a", 2), ("a", 4), ("b", 10), ("a", 6)], 3);
        let mut means: Vec<(&str, f64)> = ds
            .aggregate_by_key(
                (0i64, 0u32),
                |(s, c), v| (s + v, c + 1),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
            .collect()
            .into_iter()
            .map(|(k, (s, c))| (k, s as f64 / c as f64))
            .collect();
        means.sort_by_key(|(k, _)| *k);
        assert_eq!(means, vec![("a", 4.0), ("b", 10.0)]);
    }

    #[test]
    fn aggregate_by_key_combines_map_side() {
        let rows: Vec<(u32, u64)> = (0..1000).map(|i| (i % 4, 1u64)).collect();
        let stats = ShuffleStats::new();
        let ds =
            KeyedDataset::from_dataset(Dataset::from_vec(rows, 5)).with_stats(Arc::clone(&stats));
        let mut out = ds
            .aggregate_by_key(0u64, |a, v| a + v, |a, b| a + b)
            .collect();
        out.sort();
        assert_eq!(out, vec![(0, 250), (1, 250), (2, 250), (3, 250)]);
        assert!(
            stats.records() <= 20,
            "map-side combining must bound shuffle: {}",
            stats.records()
        );
    }

    #[test]
    fn fold_by_key_matches_reduce_by_key() {
        let ds = kv(vec![("x", 3), ("y", 4), ("x", 5)], 2);
        let mut a = ds.fold_by_key(0, |p, q| p + q).collect();
        let mut b = ds.reduce_by_key(|p, q| p + q).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn count_by_key_counts() {
        let ds = kv(vec![("x", 0), ("y", 0), ("x", 0), ("x", 0)], 4);
        let m = ds.count_by_key().collect_map();
        assert_eq!(m["x"], 3);
        assert_eq!(m["y"], 1);
    }

    #[test]
    fn inner_join_matches_pairs() {
        let left = kv(vec![("a", 1), ("b", 2), ("a", 3)], 2);
        let right = KeyedDataset::from_dataset(Dataset::from_vec(
            vec![("a", "A1"), ("c", "C1"), ("a", "A2")],
            2,
        ));
        let mut out = left.join(&right).collect();
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a", (1, "A1")),
                ("a", (1, "A2")),
                ("a", (3, "A1")),
                ("a", (3, "A2")),
            ]
        );
    }

    #[test]
    fn broadcast_join_matches_shuffle_join() {
        let left = kv(vec![("a", 1), ("b", 2), ("a", 3), ("d", 9)], 3);
        let right = KeyedDataset::from_dataset(Dataset::from_vec(
            vec![("a", "A1"), ("c", "C1"), ("a", "A2"), ("b", "B1")],
            2,
        ));
        let mut shuffle = left.join(&right).collect();
        let mut broadcast = left.broadcast_join(&right).collect();
        shuffle.sort();
        broadcast.sort();
        assert_eq!(shuffle, broadcast);
    }

    #[test]
    fn broadcast_join_is_narrow() {
        let stats = ShuffleStats::new();
        let left = kv(vec![("a", 1), ("b", 2)], 2).with_stats(Arc::clone(&stats));
        let right = kv(vec![("a", 10)], 1);
        let out = left.broadcast_join(&right).collect();
        assert_eq!(out, vec![("a", (1, 10))]);
        assert_eq!(
            stats.shuffles(),
            0,
            "broadcast join must not shuffle the big side"
        );
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let left = kv(vec![("a", 1), ("b", 2)], 1);
        let right = KeyedDataset::from_dataset(Dataset::from_vec(vec![("a", 10)], 1));
        let mut out = left.left_join(&right).collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out, vec![("a", (1, Some(10))), ("b", (2, None))]);
    }

    #[test]
    fn map_values_and_filter_keys_are_narrow() {
        let stats = ShuffleStats::new();
        let ds = kv(vec![("a", 1), ("b", 2)], 2).with_stats(Arc::clone(&stats));
        let out = ds
            .map_values(|v| v * 10)
            .filter_keys(|k| *k == "a")
            .collect();
        assert_eq!(out, vec![("a", 10)]);
        assert_eq!(stats.shuffles(), 0, "narrow ops must not shuffle");
    }

    #[test]
    fn map_side_combine_cuts_shuffle_volume() {
        // 1000 rows, 2 keys, 4 partitions: reduce_by_key should shuffle at
        // most 8 records; group_by_key shuffles all 1000.
        let rows: Vec<(u32, u64)> = (0..1000).map(|i| (i % 2, 1u64)).collect();
        let stats_reduce = ShuffleStats::new();
        let ds = KeyedDataset::from_dataset(Dataset::from_vec(rows.clone(), 4))
            .with_stats(Arc::clone(&stats_reduce));
        let mut reduced = ds.reduce_by_key(|a, b| a + b).collect();
        reduced.sort();
        assert_eq!(reduced, vec![(0, 500), (1, 500)]);
        assert!(
            stats_reduce.records() <= 8,
            "shuffled {}",
            stats_reduce.records()
        );

        let stats_group = ShuffleStats::new();
        let ds = KeyedDataset::from_dataset(Dataset::from_vec(rows, 4))
            .with_stats(Arc::clone(&stats_group));
        let grouped = ds.group_by_key().collect();
        assert_eq!(grouped.iter().map(|(_, v)| v.len()).sum::<usize>(), 1000);
        assert_eq!(stats_group.records(), 1000);
    }

    #[test]
    fn shuffle_materializes_once_per_action_chain() {
        let stats = ShuffleStats::new();
        let ds = kv(vec![("a", 1), ("b", 2), ("a", 3)], 2).with_stats(Arc::clone(&stats));
        let reduced = ds.reduce_by_key(|x, y| x + y);
        reduced.count();
        reduced.collect();
        // The shuffle op memoizes: two actions, one materialization.
        assert_eq!(stats.shuffles(), 1);
    }

    #[test]
    fn chained_aggregation_elides_second_shuffle() {
        use crate::optimize::OptimizerConfig;
        let rows: Vec<(u32, u64)> = (0..300).map(|i| (i % 16, 1u64)).collect();
        let run = |cfg: OptimizerConfig| {
            let stats = ShuffleStats::new();
            let ds =
                KeyedDataset::from_dataset(Dataset::from_vec(rows.clone(), 4).with_optimizer(cfg))
                    .with_stats(Arc::clone(&stats));
            // reduce_by_key leaves the data hash-partitioned; the second
            // aggregation routes by the same seed into the same count.
            let mut out = ds
                .reduce_by_key(|a, b| a + b)
                .filter_keys(|k| k % 2 == 0)
                .map_values(|v| v * 10)
                .reduce_by_key(|a, b| a + b)
                .collect();
            out.sort();
            (out, stats.shuffles(), stats.shuffles_elided())
        };
        let (optimized, shuffles, elided) = run(OptimizerConfig::default());
        let (naive, naive_shuffles, naive_elided) = run(OptimizerConfig::naive());
        assert_eq!(optimized, naive, "elision must be invisible in the rows");
        assert_eq!((shuffles, elided), (1, 1), "second boundary elided");
        assert_eq!((naive_shuffles, naive_elided), (2, 0));
    }

    #[test]
    fn co_partitioned_join_elides_shuffle() {
        use crate::optimize::OptimizerConfig;
        let lrows: Vec<(u32, u64)> = (0..200).map(|i| (i % 10, 1u64)).collect();
        let rrows: Vec<(u32, u64)> = (0..100).map(|i| (i % 7, 2u64)).collect();
        let run = |cfg: OptimizerConfig| {
            let stats = ShuffleStats::new();
            let left =
                KeyedDataset::from_dataset(Dataset::from_vec(lrows.clone(), 4).with_optimizer(cfg))
                    .with_stats(Arc::clone(&stats))
                    .count_by_key();
            let right =
                KeyedDataset::from_dataset(Dataset::from_vec(rrows.clone(), 4).with_optimizer(cfg))
                    .with_stats(Arc::clone(&stats))
                    .count_by_key();
            let mut out = left.left_join(&right).collect();
            out.sort();
            (out, stats.shuffles(), stats.shuffles_elided())
        };
        let (optimized, shuffles, elided) = run(OptimizerConfig::default());
        let (naive, naive_shuffles, naive_elided) = run(OptimizerConfig::naive());
        assert_eq!(optimized, naive, "co-partitioned join must match shuffled join");
        assert_eq!(
            (shuffles, elided),
            (2, 1),
            "two count shuffles stay, the join boundary is elided"
        );
        assert_eq!((naive_shuffles, naive_elided), (3, 0));
    }

    #[test]
    fn mismatched_seed_does_not_elide() {
        use peachy_cluster::dist::ROUTE_SEED;
        let rows: Vec<(u32, u64)> = (0..100).map(|i| (i % 8, 1u64)).collect();
        let stats = ShuffleStats::new();
        // A layout claimed under a *different* seed does not satisfy the
        // shuffle's routing: the shuffle must run for real.
        let ds = KeyedDataset::from_dataset(Dataset::from_vec(rows.clone(), 4))
            .with_stats(Arc::clone(&stats))
            .assume_hash_partitioned(ROUTE_SEED ^ 1, 4);
        let mut out = ds.reduce_by_key(|a, b| a + b).collect();
        out.sort();
        let expected: Vec<(u32, u64)> = (0..8).map(|k| (k, if k < 4 { 13 } else { 12 })).collect();
        assert_eq!(out, expected);
        assert_eq!(stats.shuffles(), 1, "wrong seed: no elision");
        assert_eq!(stats.shuffles_elided(), 0);
    }

    #[test]
    fn mismatched_partition_count_does_not_elide() {
        let lrows: Vec<(u32, u64)> = (0..200).map(|i| (i % 10, 1u64)).collect();
        let rrows: Vec<(u32, u64)> = (0..100).map(|i| (i % 7, 2u64)).collect();
        let stats = ShuffleStats::new();
        // Both sides genuinely hash-partitioned — but into *different*
        // counts (4 and 6). The join routes into max(4, 6) = 6 buckets,
        // which neither layout satisfies: the shuffle must run.
        let left = KeyedDataset::from_dataset(Dataset::from_vec(lrows.clone(), 4))
            .with_stats(Arc::clone(&stats))
            .count_by_key();
        let right = KeyedDataset::from_dataset(Dataset::from_vec(rrows.clone(), 6))
            .with_stats(Arc::clone(&stats))
            .count_by_key();
        let mut out = left.left_join(&right).collect();
        out.sort();
        assert_eq!(
            (stats.shuffles(), stats.shuffles_elided()),
            (3, 0),
            "count mismatch: the join boundary must not elide"
        );
        // Same rows as the fully co-partitioned variant of this join.
        let co_left = KeyedDataset::from_dataset(Dataset::from_vec(lrows, 6)).count_by_key();
        let co_right = KeyedDataset::from_dataset(Dataset::from_vec(rrows, 6)).count_by_key();
        let mut expected = co_left.left_join(&co_right).collect();
        expected.sort();
        assert_eq!(out, expected);
    }

    #[test]
    fn elision_disabled_by_config() {
        use crate::optimize::OptimizerConfig;
        let rows: Vec<(u32, u64)> = (0..100).map(|i| (i % 8, 1u64)).collect();
        let stats = ShuffleStats::new();
        let cfg = OptimizerConfig {
            elide_shuffles: false,
            ..OptimizerConfig::default()
        };
        let ds = KeyedDataset::from_dataset(Dataset::from_vec(rows, 4).with_optimizer(cfg))
            .with_stats(Arc::clone(&stats));
        ds.reduce_by_key(|a, b| a + b)
            .reduce_by_key(|a, b| a + b)
            .collect();
        assert_eq!(stats.shuffles(), 2, "elision off: both boundaries run");
        assert_eq!(stats.shuffles_elided(), 0);
    }

    #[test]
    fn assume_hash_partitioned_enables_elision_on_reload() {
        use peachy_cluster::dist::ROUTE_SEED;
        // Simulate writing shuffled output and reloading it: the reloaded
        // dataset's layout is hash-keyed, but the type system forgot. The
        // claim restores the knowledge and the re-aggregation elides.
        let rows: Vec<(String, u64)> = (0..200)
            .map(|i| (format!("key{}", i % 12), 1u64))
            .collect();
        let first = KeyedDataset::from_dataset(Dataset::from_vec(rows, 4))
            .reduce_by_key(|a, b| a + b);
        let stats = ShuffleStats::new();
        let claimed = KeyedDataset::from_dataset(first.rows())
            .with_stats(Arc::clone(&stats))
            .assume_hash_partitioned(ROUTE_SEED, 4);
        let mut a = claimed.reduce_by_key(|x, y| x + y).collect();
        a.sort();
        let mut b = first.collect();
        b.sort();
        assert_eq!(a, b, "per-key totals already final: elided re-reduce is identity");
        assert_eq!(stats.shuffles(), 0);
        assert_eq!(stats.shuffles_elided(), 1);
    }

    #[test]
    fn empty_keyed_dataset() {
        let ds = kv(vec![], 3);
        assert!(ds.reduce_by_key(|a, b| a + b).collect().is_empty());
        assert!(ds.group_by_key().collect().is_empty());
        let other = kv(vec![("a", 1)], 1);
        assert!(ds.join(&other).collect().is_empty());
    }
}
