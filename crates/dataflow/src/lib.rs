//! # peachy-dataflow
//!
//! A Spark-like dataflow engine: the substrate for the §4 "Data Science
//! Pipeline" assignment, where students "design, construct, and improve
//! data analysis pipelines using Hadoop, MapReduce, and Spark".
//!
//! The engine reproduces the concepts the assignment teaches, at laptop
//! scale:
//!
//! * **Lazy lineage** — a [`Dataset<T>`] is a recipe, not data. Narrow
//!   transformations ([`Dataset::map`], [`Dataset::filter`],
//!   [`Dataset::flat_map`], [`Dataset::union_with`]) extend the lineage
//!   without computing anything.
//! * **Partitions** — every dataset is split into partitions, the unit of
//!   parallelism; actions evaluate partitions concurrently on the rayon
//!   pool.
//! * **Stage pipelining** — chains of narrow ops fuse: one pass per
//!   partition, no intermediate materialization.
//! * **Wide transformations & the shuffle** — [`keyed::KeyedDataset`]
//!   provides `reduce_by_key`, `group_by_key`, `join`, … implemented with a
//!   hash-partitioned shuffle whose map-side output is materialized once
//!   (like Spark's shuffle files) and whose record volume is observable via
//!   [`ShuffleStats`] — so the "improve the pipeline" exercise (map-side
//!   combining, partition sizing) is measurable.
//! * **Caching** — [`Dataset::cache`] pins a dataset's partitions in memory
//!   after first evaluation, cutting recomputation exactly as `RDD.cache()`
//!   does.
//! * **Explain** — [`Dataset::explain`] prints the lineage tree with stage
//!   boundaries, the mental model the course builds.
//! * **Task retry** — [`Dataset::with_retry`] makes partition evaluation
//!   failure-aware: a panicking compute (flaky UDF, simulated executor
//!   loss) is recomputed from lineage up to a [`RetryPolicy`] bound,
//!   Spark's task-retry behaviour on the lineage graph.
//! * **The plan optimizer** — every action runs through a cost-based
//!   rewrite pass ([`optimize`]): adjacent narrow ops fuse into one
//!   push-based pass, shuffles whose input is provably co-partitioned are
//!   elided entirely, and subtrees consumed by multiple actions are
//!   auto-cached when the measured/estimated recompute volume clears a
//!   threshold. [`Dataset::explain_plans`] renders the naive and optimized
//!   plans side by side with predicted shuffle bytes; every rewrite is
//!   individually gated by [`OptimizerConfig`] and pinned bit-identical to
//!   the naive plan by the equivalence suite.
//! * **Out-of-core partitions** — every resident-partition holder (source
//!   rows, caches, shuffle buckets) lives behind one storage seam,
//!   [`store::PartitionStore`]. With a byte budget configured
//!   (`OptimizerConfig::spill_budget`), partitions that would overrun it
//!   are spilled to temp files in a deterministic encoding and streamed
//!   back on access — results stay bit-identical at every budget, and
//!   [`ShuffleStats`] meters the spill traffic.
//! * **Streaming out-of-core execution** — spilled partitions are consumed
//!   through a row [`store::RowCursor`] instead of being rebuilt in memory:
//!   fused narrow chains, the shuffle's route/fill passes (writing through
//!   [`store::SpillSink`]s) and the merge-side posts all pull rows straight
//!   off disk. A deterministic high-water meter
//!   (`ShuffleStats::peak_resident_bytes`) proves the residency win, and
//!   the plan report renders which nodes stream.
//!
//! ```
//! use peachy_dataflow::Dataset;
//!
//! let words = Dataset::from_vec(vec!["a b", "b c c"], 2)
//!     .flat_map(|line| line.split_whitespace().map(str::to_string).collect::<Vec<_>>());
//! let counts = words.key_by(|w| w.clone()).map_values(|_| 1u64).reduce_by_key(|a, b| a + b);
//! let mut table = counts.collect();
//! table.sort();
//! assert_eq!(table, vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 2)]);
//! ```

pub mod dataset;
pub mod keyed;
pub mod ops;
pub mod optimize;
pub mod plan;
pub mod shuffle;
pub mod store;

pub use dataset::Dataset;
pub use keyed::KeyedDataset;
pub use optimize::{OptimizerConfig, PlanReport};
pub use peachy_cluster::{ByteSized, RetryPolicy};
pub use plan::{Partitioning, PlanKind, PlanNode};
pub use shuffle::ShuffleStats;
pub use store::{PartitionStore, Residency, RowCursor, SpillReader, SpillRow, SpillSink, StoreConfig};
