//! Additional dataset operations rounding out the Spark surface the §4
//! pipelines draw on: `distinct`, `sample`, `coalesce`, `sort_by_key`,
//! `count_by_value`, and `top_k`.

use std::hash::Hash;

use peachy_cluster::ByteSized;

use crate::dataset::Dataset;
use crate::keyed::KeyedDataset;
use crate::store::SpillRow;

impl<T: Clone + Send + Sync + SpillRow + 'static> Dataset<T> {
    /// Wide: remove duplicate rows (hash-shuffle so equal rows co-locate).
    /// Output order is deterministic: first occurrence order within the
    /// owning partition.
    pub fn distinct(&self) -> Dataset<T>
    where
        T: Hash + Eq + ByteSized,
    {
        self.key_by(|row| row.clone())
            .rows()
            .map(|(k, _)| (k, ()))
            .pipe_keyed()
            .reduce_by_key(|a, _| a)
            .rows()
            .map(|(k, _)| k)
    }

    /// Narrow: deterministic pseudo-random subsample keeping roughly
    /// `fraction` of rows. Seeded per row index within each partition, so
    /// the sample is stable across runs and partition counts do not change
    /// which rows of a partition are kept.
    pub fn sample(&self, fraction: f64, seed: u64) -> Dataset<T> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let threshold = (fraction * u64::MAX as f64) as u64;
        self.map_partitions(move |rows| {
            rows.into_iter()
                .enumerate()
                .filter(|(i, _)| {
                    // Stateless per-row hash coin.
                    let h = peachy_hash(seed, *i as u64);
                    h <= threshold
                })
                .map(|(_, r)| r)
                .collect()
        })
    }

    /// Wide: reduce the partition count (like Spark's `coalesce`), merging
    /// whole partitions without reordering rows.
    pub fn coalesce(&self, target: usize) -> Dataset<T> {
        assert!(target >= 1, "need at least one partition");

        self.collect_lazy_groups(target)
    }

    fn collect_lazy_groups(&self, target: usize) -> Dataset<T> {
        // Implemented as a repartition that preserves order by assigning
        // source partitions to targets in contiguous groups.
        let sources = self.num_partitions();
        let target = target.min(sources);
        let per = sources.div_ceil(target);
        // Materialize through map_partitions on a synthetic index dataset
        // would lose laziness; a dedicated op keeps it simple and correct.
        let parent = self.clone();
        Dataset::from_op_groups(parent, per, target)
    }

    /// Action: count occurrences of each distinct row.
    pub fn count_by_value(&self) -> Vec<(T, u64)>
    where
        T: Hash + Eq + ByteSized,
    {
        self.key_by(|row| row.clone())
            .map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b)
            .collect()
    }

    /// Action: the `k` largest rows by a key function (descending).
    pub fn top_k_by<K, F>(&self, k: usize, key: F) -> Vec<T>
    where
        K: PartialOrd,
        F: Fn(&T) -> K + Send + Sync,
    {
        let mut all = self.collect();
        all.sort_by(|a, b| key(b).partial_cmp(&key(a)).expect("comparable keys"));
        all.truncate(k);
        all
    }
}

impl<K, V> KeyedDataset<K, V>
where
    K: Clone + Send + Sync + Hash + Eq + Ord + SpillRow + 'static,
    V: Clone + Send + Sync + SpillRow + 'static,
{
    /// Wide: globally sort by key (ascending). Materializes through the
    /// shuffle, then performs a distributed-merge-style final ordering.
    pub fn sort_by_key(&self) -> Vec<(K, V)> {
        let mut rows = self.collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

/// SplitMix-style stateless hash for the sampler.
fn peachy_hash(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl<K, V> Dataset<(K, V)>
where
    K: Clone + Send + Sync + Hash + Eq + SpillRow + 'static,
    V: Clone + Send + Sync + SpillRow + 'static,
{
    /// View a pair dataset as a keyed dataset.
    pub fn pipe_keyed(&self) -> KeyedDataset<K, V> {
        KeyedDataset::from_dataset(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_removes_duplicates() {
        let ds = Dataset::from_vec(vec![3, 1, 2, 3, 1, 1, 4], 3);
        let mut out = ds.distinct().collect();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn distinct_on_all_unique_is_identity_set() {
        let ds = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 4);
        let mut out = ds.distinct().collect();
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_fraction_roughly_respected() {
        let ds = Dataset::from_vec((0..10_000).collect::<Vec<u32>>(), 4);
        let kept = ds.sample(0.3, 7).count();
        assert!((2_500..3_500).contains(&kept), "kept {kept}");
        // Deterministic.
        assert_eq!(ds.sample(0.3, 7).collect(), ds.sample(0.3, 7).collect());
        assert_ne!(ds.sample(0.3, 7).collect(), ds.sample(0.3, 8).collect());
    }

    #[test]
    fn sample_extremes() {
        let ds = Dataset::from_vec((0..100).collect::<Vec<u32>>(), 4);
        assert_eq!(ds.sample(1.0, 1).count(), 100);
        assert_eq!(ds.sample(0.0, 1).count(), 0);
    }

    #[test]
    fn coalesce_preserves_rows_and_order() {
        let data: Vec<i32> = (0..100).collect();
        let ds = Dataset::from_vec(data.clone(), 10).coalesce(3);
        assert_eq!(ds.num_partitions(), 3);
        assert_eq!(ds.collect(), data, "coalesce must preserve global order");
    }

    #[test]
    fn coalesce_to_more_partitions_is_clipped() {
        let ds = Dataset::from_vec(vec![1, 2, 3], 2).coalesce(10);
        assert_eq!(ds.num_partitions(), 2);
    }

    #[test]
    fn count_by_value_counts() {
        let ds = Dataset::from_vec(vec!["a", "b", "a", "a"], 2);
        let mut out = ds.count_by_value();
        out.sort();
        assert_eq!(out, vec![("a", 3), ("b", 1)]);
    }

    #[test]
    fn top_k_by_descends() {
        let ds = Dataset::from_vec(vec![5, 1, 9, 3, 7], 2);
        assert_eq!(ds.top_k_by(3, |&x| x), vec![9, 7, 5]);
        assert_eq!(ds.top_k_by(99, |&x| x).len(), 5);
    }

    #[test]
    fn sort_by_key_sorts() {
        let ds = Dataset::from_vec(vec![(3, "c"), (1, "a"), (2, "b"), (1, "z")], 3).pipe_keyed();
        let sorted = ds.sort_by_key();
        let keys: Vec<i32> = sorted.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 1, 2, 3]);
    }
}
