//! The core lazy dataset: lineage nodes, narrow transformations, actions.

use std::sync::{Arc, OnceLock};

use peachy_cluster::RetryPolicy;
use rayon::prelude::*;

/// A lineage node: something that can produce partition `i` on demand.
///
/// Narrow operations implement `compute_partition` by pulling the parent's
/// partition and transforming it in place — so a chain of narrow ops is one
/// fused pass (a *stage*). Wide operations materialize all map-side output
/// once, then serve bucketed partitions.
pub(crate) trait Op<T>: Send + Sync {
    /// Number of partitions.
    fn partitions(&self) -> usize;
    /// Compute one partition's rows.
    fn compute_partition(&self, idx: usize) -> Vec<T>;
    /// Compute one partition as a shared handle. Nodes that hold their
    /// rows resident (sources, caches, materialized shuffles) override
    /// this to hand out an `Arc` instead of deep-cloning the partition;
    /// everything else falls back to wrapping the owned result, which a
    /// consumer can unwrap for free via [`take_rows`].
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        Arc::new(self.compute_partition(idx))
    }
    /// Human-readable node label for `explain()`.
    fn label(&self) -> String;
    /// Child lineage labels (already-rendered subtrees).
    fn explain_children(&self, indent: usize, out: &mut String);
    /// Number of stages (shuffle boundaries + 1) along the deepest lineage
    /// path ending at this node.
    fn stages(&self) -> usize;
}

/// Take ownership of a shared partition: free when the handle is unique
/// (the default `compute_partition_shared` wrapper), one clone when the
/// rows are resident elsewhere (a source or cache keeps them).
pub(crate) fn take_rows<T: Clone>(shared: Arc<Vec<T>>) -> Vec<T> {
    Arc::try_unwrap(shared).unwrap_or_else(|kept| (*kept).clone())
}

/// A lazy, partitioned, immutable collection — the engine's RDD analogue.
///
/// Cloning a `Dataset` clones the recipe (an `Arc`), not the data.
pub struct Dataset<T> {
    pub(crate) op: Arc<dyn Op<T>>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Self {
            op: Arc::clone(&self.op),
        }
    }
}

// ---------- source ----------

struct Source<T> {
    // `Arc` per partition so actions on an uncached dataset read the
    // resident rows instead of deep-cloning them per action.
    parts: Vec<Arc<Vec<T>>>,
}

impl<T: Send + Sync> Op<T> for Source<T>
where
    T: Clone,
{
    fn partitions(&self) -> usize {
        self.parts.len()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        (*self.parts[idx]).clone()
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        Arc::clone(&self.parts[idx])
    }
    fn label(&self) -> String {
        let n: usize = self.parts.iter().map(|p| p.len()).sum();
        format!("Source[{} rows, {} partitions]", n, self.parts.len())
    }
    fn explain_children(&self, _indent: usize, _out: &mut String) {}
    fn stages(&self) -> usize {
        1
    }
}

// ---------- narrow ops ----------

struct MapOp<U, T, F> {
    parent: Arc<dyn Op<U>>,
    f: F,
    name: &'static str,
    _marker: std::marker::PhantomData<fn(U) -> T>,
}

impl<U, T, F> Op<T> for MapOp<U, T, F>
where
    U: Send + Sync,
    T: Send + Sync,
    F: Fn(U, &mut Vec<T>) + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        let input = self.parent.compute_partition(idx);
        let mut out = Vec::with_capacity(input.len());
        for row in input {
            (self.f)(row, &mut out);
        }
        out
    }
    fn label(&self) -> String {
        self.name.to_string()
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

struct UnionOp<T> {
    left: Arc<dyn Op<T>>,
    right: Arc<dyn Op<T>>,
}

impl<T: Send + Sync> Op<T> for UnionOp<T> {
    fn partitions(&self) -> usize {
        self.left.partitions() + self.right.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        let l = self.left.partitions();
        if idx < l {
            self.left.compute_partition(idx)
        } else {
            self.right.compute_partition(idx - l)
        }
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        let l = self.left.partitions();
        if idx < l {
            self.left.compute_partition_shared(idx)
        } else {
            self.right.compute_partition_shared(idx - l)
        }
    }
    fn label(&self) -> String {
        "Union".to_string()
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.left, indent, out);
        explain_into(&*self.right, indent, out);
    }
    fn stages(&self) -> usize {
        self.left.stages().max(self.right.stages())
    }
}

// ---------- cache ----------

struct CacheOp<T> {
    parent: Arc<dyn Op<T>>,
    cells: Vec<OnceLock<Arc<Vec<T>>>>,
    hits: std::sync::atomic::AtomicU64,
}

impl<T: Clone + Send + Sync> Op<T> for CacheOp<T> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        (*self.compute_partition_shared(idx)).clone()
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        if let Some(hit) = self.cells[idx].get() {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let computed = self.cells[idx]
            .get_or_init(|| self.parent.compute_partition_shared(idx));
        Arc::clone(computed)
    }
    fn label(&self) -> String {
        "Cache".to_string()
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

// ---------- repartition (wide, round-robin) ----------

struct RepartitionOp<T> {
    parent: Arc<dyn Op<T>>,
    target: usize,
    materialized: OnceLock<Vec<Arc<Vec<T>>>>,
}

impl<T: Clone + Send + Sync> Op<T> for RepartitionOp<T> {
    fn partitions(&self) -> usize {
        self.target
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        (*self.compute_partition_shared(idx)).clone()
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        let parts = self.materialized.get_or_init(|| {
            let inputs: Vec<Vec<T>> = (0..self.parent.partitions())
                .into_par_iter()
                .map(|i| self.parent.compute_partition(i))
                .collect();
            let mut out: Vec<Vec<T>> = (0..self.target).map(|_| Vec::new()).collect();
            for (i, row) in inputs.into_iter().flatten().enumerate() {
                out[i % self.target].push(row);
            }
            out.into_iter().map(Arc::new).collect()
        });
        Arc::clone(&parts[idx])
    }
    fn label(&self) -> String {
        format!("Repartition[{}] === stage boundary ===", self.target)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages() + 1
    }
}

// ---------- retry (failure-aware partition executor) ----------

struct RetryOp<T> {
    parent: Arc<dyn Op<T>>,
    policy: RetryPolicy,
    retries: std::sync::atomic::AtomicU64,
}

impl<T> RetryOp<T> {
    /// Run `run` under the retry policy, re-raising the last panic once
    /// the attempt budget is spent.
    fn run_bounded<R>(&self, run: impl Fn() -> R) -> R {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&run)) {
                Ok(rows) => return rows,
                Err(payload) => {
                    if attempt >= self.policy.max_attempts {
                        std::panic::resume_unwind(payload);
                    }
                    self.retries
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.policy.sleep_before_retry(attempt);
                }
            }
        }
    }
}

impl<T: Send + Sync> Op<T> for RetryOp<T> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        self.run_bounded(|| self.parent.compute_partition(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        self.run_bounded(|| self.parent.compute_partition_shared(idx))
    }
    fn label(&self) -> String {
        format!("Retry[max {} attempts]", self.policy.max_attempts)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

/// Render one lineage node and its children, indenting per level.
pub(crate) fn explain_into<T>(op: &dyn Op<T>, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(&op.label());
    out.push('\n');
    op.explain_children(indent + 1, out);
}

// ---------- public API ----------

impl<T: Clone + Send + Sync + 'static> Dataset<T> {
    /// Create a dataset from a vector, split into `partitions` contiguous
    /// blocks (balanced, like a file read).
    pub fn from_vec(data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let n = data.len();
        let mut parts: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
        if n > 0 {
            let base = n / partitions;
            let extra = n % partitions;
            let mut iter = data.into_iter();
            for (r, part) in parts.iter_mut().enumerate() {
                let len = base + usize::from(r < extra);
                part.extend(iter.by_ref().take(len));
            }
        }
        Self {
            op: Arc::new(Source {
                parts: parts.into_iter().map(Arc::new).collect(),
            }),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.op.partitions()
    }

    /// Narrow: apply `f` to every row.
    pub fn map<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        Dataset {
            op: Arc::new(MapOp {
                parent: Arc::clone(&self.op),
                f: move |row, out: &mut Vec<U>| out.push(f(row)),
                name: "Map",
                _marker: std::marker::PhantomData,
            }),
        }
    }

    /// Narrow: keep rows satisfying the predicate.
    pub fn filter<F>(&self, pred: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        Dataset {
            op: Arc::new(MapOp {
                parent: Arc::clone(&self.op),
                f: move |row: T, out: &mut Vec<T>| {
                    if pred(&row) {
                        out.push(row);
                    }
                },
                name: "Filter",
                _marker: std::marker::PhantomData,
            }),
        }
    }

    /// Narrow: expand each row into zero or more rows.
    pub fn flat_map<U, I, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync + 'static,
    {
        Dataset {
            op: Arc::new(MapOp {
                parent: Arc::clone(&self.op),
                f: move |row, out: &mut Vec<U>| out.extend(f(row)),
                name: "FlatMap",
                _marker: std::marker::PhantomData,
            }),
        }
    }

    /// Narrow: transform a whole partition at once (Spark's
    /// `mapPartitions`) — the hook for per-partition algorithms such as
    /// map-side combining.
    pub fn map_partitions<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + 'static,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        struct MapPartitionsOp<T, U, F> {
            parent: Arc<dyn Op<T>>,
            f: F,
            _marker: std::marker::PhantomData<fn(T) -> U>,
        }
        impl<T, U, F> Op<U> for MapPartitionsOp<T, U, F>
        where
            T: Send + Sync,
            U: Send + Sync,
            F: Fn(Vec<T>) -> Vec<U> + Send + Sync,
        {
            fn partitions(&self) -> usize {
                self.parent.partitions()
            }
            fn compute_partition(&self, idx: usize) -> Vec<U> {
                (self.f)(self.parent.compute_partition(idx))
            }
            fn label(&self) -> String {
                "MapPartitions".to_string()
            }
            fn explain_children(&self, indent: usize, out: &mut String) {
                explain_into(&*self.parent, indent, out);
            }
            fn stages(&self) -> usize {
                self.parent.stages()
            }
        }
        Dataset {
            op: Arc::new(MapPartitionsOp {
                parent: Arc::clone(&self.op),
                f,
                _marker: std::marker::PhantomData,
            }),
        }
    }

    /// Narrow: concatenate two datasets (partitions of both are preserved).
    pub fn union_with(&self, other: &Dataset<T>) -> Dataset<T> {
        Dataset {
            op: Arc::new(UnionOp {
                left: Arc::clone(&self.op),
                right: Arc::clone(&other.op),
            }),
        }
    }

    /// Attach keys: produce a keyed dataset for wide operations.
    pub fn key_by<K, F>(&self, f: F) -> crate::keyed::KeyedDataset<K, T>
    where
        K: Clone + Send + Sync + std::hash::Hash + Eq + 'static,
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        crate::keyed::KeyedDataset::from_dataset(self.map(move |row| (f(&row), row)))
    }

    /// Pin this dataset's partitions in memory after first computation.
    pub fn cache(&self) -> Dataset<T> {
        let parts = self.op.partitions();
        Dataset {
            op: Arc::new(CacheOp {
                parent: Arc::clone(&self.op),
                cells: (0..parts).map(|_| OnceLock::<Arc<Vec<T>>>::new()).collect(),
                hits: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Make partition evaluation failure-aware: a partition whose compute
    /// panics (a flaky UDF, a simulated executor loss) is retried up to
    /// `policy.max_attempts` times with the policy's backoff — Spark's
    /// task-retry / Parsl's app-retry behaviour on the lineage graph. The
    /// panic is re-raised once the budget is exhausted. Because lineage
    /// recomputes from the parent each attempt (caches left uninitialized
    /// by a panicking compute are retried through), a transient failure is
    /// invisible in the action's result.
    pub fn with_retry(&self, policy: RetryPolicy) -> Dataset<T> {
        assert!(policy.max_attempts >= 1, "max_attempts must be >= 1");
        Dataset {
            op: Arc::new(RetryOp {
                parent: Arc::clone(&self.op),
                policy,
                retries: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Wide: redistribute rows round-robin over `target` partitions.
    pub fn repartition(&self, target: usize) -> Dataset<T> {
        assert!(target > 0, "need at least one partition");
        Dataset {
            op: Arc::new(RepartitionOp {
                parent: Arc::clone(&self.op),
                target,
                materialized: OnceLock::new(),
            }),
        }
    }

    // ---------- actions ----------

    /// Action: materialize every row (partitions evaluated in parallel,
    /// concatenated in partition order). Reads the shared-partition path,
    /// so resident rows (sources, caches) are cloned once into the output
    /// rather than once per lineage hop.
    pub fn collect(&self) -> Vec<T> {
        let parts: Vec<Arc<Vec<T>>> = (0..self.op.partitions())
            .into_par_iter()
            .map(|i| self.op.compute_partition_shared(i))
            .collect();
        let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for part in parts {
            out.extend(take_rows(part));
        }
        out
    }

    /// Action: number of rows. Counts through the shared handles — no row
    /// is cloned.
    pub fn count(&self) -> usize {
        (0..self.op.partitions())
            .into_par_iter()
            .map(|i| self.op.compute_partition_shared(i).len())
            .sum()
    }

    /// Action: at most `n` rows, from the earliest partitions (partitions
    /// are evaluated lazily one at a time, like Spark's `take`). Only the
    /// taken prefix is cloned when the partition is resident elsewhere.
    pub fn take(&self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        for i in 0..self.op.partitions() {
            if out.len() >= n {
                break;
            }
            let need = n - out.len();
            match Arc::try_unwrap(self.op.compute_partition_shared(i)) {
                Ok(part) => out.extend(part.into_iter().take(need)),
                Err(resident) => out.extend(resident.iter().take(need).cloned()),
            }
        }
        out
    }

    /// Action: fold all rows with an associative, commutative operator.
    /// Returns `None` for an empty dataset.
    pub fn reduce<F>(&self, f: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Send + Sync,
    {
        let parts: Vec<Option<T>> = (0..self.op.partitions())
            .into_par_iter()
            .map(|i| take_rows(self.op.compute_partition_shared(i)).into_iter().reduce(&f))
            .collect();
        parts.into_iter().flatten().reduce(&f)
    }

    /// Number of execution stages: shuffle boundaries + 1 along the
    /// deepest lineage path — the quantity `explain()` marks visually.
    pub fn num_stages(&self) -> usize {
        self.op.stages()
    }

    /// Render the lineage tree, with stage boundaries marked at wide
    /// operations.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        explain_into(&*self.op, 0, &mut out);
        out
    }
}

struct CoalesceOp<T> {
    parent: Arc<dyn Op<T>>,
    group: usize,
    target: usize,
}

impl<T: Send + Sync> Op<T> for CoalesceOp<T> {
    fn partitions(&self) -> usize {
        self.target
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        let sources = self.parent.partitions();
        let start = idx * self.group;
        let end = ((idx + 1) * self.group).min(sources);
        let mut out = Vec::new();
        for s in start..end {
            out.extend(self.parent.compute_partition(s));
        }
        out
    }
    fn label(&self) -> String {
        format!("Coalesce[{}]", self.target)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

impl<T: Clone + Send + Sync + 'static> Dataset<T> {
    /// Internal: group `per` consecutive source partitions into each of
    /// `target` output partitions (order-preserving narrow-ish merge).
    pub(crate) fn from_op_groups(parent: Dataset<T>, per: usize, target: usize) -> Dataset<T> {
        Dataset {
            op: Arc::new(CoalesceOp {
                parent: parent.op,
                group: per,
                target,
            }),
        }
    }
}

impl Dataset<String> {
    /// Parse the lines of a text blob into a dataset of `String` rows —
    /// the ingestion step of every pipeline.
    pub fn from_text(text: &str, partitions: usize) -> Dataset<String> {
        Dataset::from_vec(text.lines().map(String::from).collect(), partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_splits_lines() {
        let ds = Dataset::from_text("a\nb\nc\n", 2);
        assert_eq!(ds.collect(), vec!["a", "b", "c"]);
    }

    #[test]
    fn from_vec_balances_partitions() {
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 4);
        assert_eq!(ds.num_partitions(), 4);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn from_vec_more_partitions_than_rows() {
        let ds = Dataset::from_vec(vec![1, 2], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.count(), 2);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::from_vec(Vec::<i32>::new(), 3);
        assert_eq!(ds.count(), 0);
        assert!(ds.collect().is_empty());
        assert_eq!(ds.reduce(|a, b| a + b), None);
    }

    #[test]
    fn map_filter_flat_map_chain() {
        let ds = Dataset::from_vec((1..=10).collect::<Vec<i32>>(), 3)
            .map(|x| x * 2)
            .filter(|&x| x % 3 == 0)
            .flat_map(|x| vec![x, x + 1]);
        assert_eq!(ds.collect(), vec![6, 7, 12, 13, 18, 19]);
    }

    #[test]
    fn collect_preserves_order() {
        let data: Vec<i32> = (0..1000).collect();
        let ds = Dataset::from_vec(data.clone(), 7).map(|x| x);
        assert_eq!(ds.collect(), data);
    }

    #[test]
    fn take_is_prefix() {
        let ds = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 5);
        assert_eq!(ds.take(7), (0..7).collect::<Vec<_>>());
        assert_eq!(ds.take(0), Vec::<i32>::new());
        assert_eq!(ds.take(1000).len(), 100);
    }

    #[test]
    fn reduce_sums() {
        let ds = Dataset::from_vec((1..=100).collect::<Vec<u64>>(), 8);
        assert_eq!(ds.reduce(|a, b| a + b), Some(5050));
    }

    #[test]
    fn union_concatenates() {
        let a = Dataset::from_vec(vec![1, 2], 1);
        let b = Dataset::from_vec(vec![3, 4], 2);
        let u = a.union_with(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lazy_until_action() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2).map(|x| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(CALLS.load(Ordering::Relaxed), 0, "map must be lazy");
        ds.count();
        assert_eq!(CALLS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn cache_avoids_recomputation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2)
            .map(move |x| {
                c.fetch_add(1, Ordering::Relaxed);
                x
            })
            .cache();
        ds.count();
        ds.count();
        ds.collect();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            10,
            "parent computed exactly once"
        );
    }

    #[test]
    fn source_actions_share_resident_rows() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // A row type whose clones are observable: repeated actions on an
        // *uncached* dataset must read the source's resident rows, not
        // re-clone them per action.
        #[derive(Debug)]
        struct Row(u64, Arc<AtomicU64>);
        impl Clone for Row {
            fn clone(&self) -> Self {
                self.1.fetch_add(1, Ordering::Relaxed);
                Row(self.0, Arc::clone(&self.1))
            }
        }
        let clones = Arc::new(AtomicU64::new(0));
        let data: Vec<Row> = (0..10).map(|i| Row(i, Arc::clone(&clones))).collect();
        let ds = Dataset::from_vec(data, 3);
        ds.count();
        ds.count();
        ds.count();
        assert_eq!(clones.load(Ordering::Relaxed), 0, "count clones nothing");
        assert_eq!(ds.take(4).len(), 4);
        assert_eq!(clones.load(Ordering::Relaxed), 4, "take clones its prefix only");
        let all = ds.collect();
        assert_eq!(all.len(), 10);
        assert_eq!(
            clones.load(Ordering::Relaxed),
            14,
            "collect clones each row exactly once"
        );
    }

    #[test]
    fn uncached_recomputes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2).map(move |x| {
            c.fetch_add(1, Ordering::Relaxed);
            x
        });
        ds.count();
        ds.count();
        assert_eq!(calls.load(Ordering::Relaxed), 20, "no cache → recompute");
    }

    #[test]
    fn repartition_preserves_rows() {
        let ds = Dataset::from_vec((0..20).collect::<Vec<i32>>(), 2).repartition(5);
        assert_eq!(ds.num_partitions(), 5);
        let mut rows = ds.collect();
        rows.sort_unstable();
        assert_eq!(rows, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn explain_shows_lineage() {
        let ds = Dataset::from_vec(vec![1, 2, 3], 2)
            .map(|x| x)
            .filter(|_| true);
        let plan = ds.explain();
        assert!(plan.contains("Filter"));
        assert!(plan.contains("Map"));
        assert!(plan.contains("Source"));
    }

    #[test]
    fn retry_recovers_from_transient_panics() {
        use parking_lot::Mutex;
        use std::collections::HashSet;
        // Each partition's first computation dies; the retry re-runs it.
        let failed_once: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
        let f = Arc::clone(&failed_once);
        let ds = Dataset::from_vec((0..40).collect::<Vec<i32>>(), 4)
            .map_partitions(move |rows: Vec<i32>| {
                let key = rows.first().copied().unwrap_or(-1) as usize;
                if f.lock().insert(key) {
                    panic!("transient executor loss on partition starting at {key}");
                }
                rows
            })
            .with_retry(RetryPolicy::default());
        assert_eq!(ds.collect(), (0..40).collect::<Vec<_>>());
        assert_eq!(failed_once.lock().len(), 4, "every partition failed once");
    }

    #[test]
    #[should_panic(expected = "permanent failure")]
    fn retry_gives_up_after_max_attempts() {
        let ds = Dataset::from_vec(vec![1, 2, 3], 1)
            .map(|_: i32| -> i32 { panic!("permanent failure") })
            .with_retry(RetryPolicy {
                max_attempts: 2,
                backoff: std::time::Duration::ZERO,
            });
        ds.collect();
    }

    #[test]
    fn retry_appears_in_lineage_and_keeps_stages() {
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2)
            .map(|x| x + 1)
            .with_retry(RetryPolicy::default());
        assert!(ds.explain().contains("Retry[max 3 attempts]"));
        assert_eq!(ds.num_stages(), 1, "retry is not a stage boundary");
        assert_eq!(ds.num_partitions(), 2);
    }

    #[test]
    fn stage_counting() {
        let base = Dataset::from_vec((0..50).collect::<Vec<i32>>(), 4);
        assert_eq!(base.num_stages(), 1);
        assert_eq!(
            base.map(|x| x).filter(|_| true).num_stages(),
            1,
            "narrow ops fuse"
        );
        assert_eq!(base.repartition(2).num_stages(), 2);
        let shuffled = base
            .key_by(|&x| x % 3)
            .reduce_by_key(|a, b| a + b)
            .rows()
            .map(|(_, v)| v);
        assert_eq!(shuffled.num_stages(), 2, "one shuffle boundary");
        let twice = shuffled
            .key_by(|&x| x)
            .group_by_key()
            .rows()
            .map(|(k, _)| k);
        assert_eq!(twice.num_stages(), 3, "two shuffle boundaries");
        // Union takes the deeper side.
        assert_eq!(base.union_with(&shuffled).num_stages(), 2);
    }
}
