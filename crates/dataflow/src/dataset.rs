//! The core lazy dataset: lineage nodes, narrow transformations, actions.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use peachy_cluster::dist::Block;
use peachy_cluster::{ByteSized, Executor, RetryPolicy};
use rayon::prelude::*;

use crate::optimize::{self, OptimizerConfig, PlanReport};
use crate::plan::{Lineage, PlanKind, PlanNode};
use crate::store::{PartitionStore, SpillRow, StoreConfig};

/// A lineage node: something that can produce partition `i` on demand.
///
/// Narrow operations implement `compute_partition` by pulling the parent's
/// partition and transforming it in place — so a chain of narrow ops is one
/// fused pass (a *stage*). Wide operations materialize all map-side output
/// once, then serve bucketed partitions.
///
/// Every op is also a [`Lineage`] node (the supertrait), giving the plan
/// optimizer a type-free view of the DAG.
pub(crate) trait Op<T>: Lineage {
    /// Number of partitions.
    fn partitions(&self) -> usize;
    /// Compute one partition's rows.
    fn compute_partition(&self, idx: usize) -> Vec<T>;
    /// Compute one partition as a shared handle. Nodes that hold their
    /// rows resident (sources, caches, materialized shuffles) override
    /// this to hand out an `Arc` instead of deep-cloning the partition;
    /// everything else falls back to wrapping the owned result, which a
    /// consumer can unwrap for free via [`take_rows`].
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        Arc::new(self.compute_partition(idx))
    }
    /// Stream one partition's rows into `emit` — the push-based (fused)
    /// evaluation path. Row-wise narrow ops override this to wrap `emit`
    /// and forward to their parent, so a chain of such ops runs as one
    /// composed pass with no intermediate `Vec`s. Everything else (the
    /// default) materializes and replays — a fusion barrier.
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        for row in self.compute_partition(idx) {
            emit(row);
        }
    }
    /// Pull-based dual of [`Op::push_partition`]: an iterator over one
    /// partition's rows, for consumers that drive the pace themselves
    /// (shuffle posts merging several cursors). Store-backed ops override
    /// this with their store's row cursor so a spilled partition is
    /// decoded row-by-row instead of rebuilt; the default materializes and
    /// drains. Retry deliberately keeps the default (atomicity — see
    /// `RetryOp::push_partition`).
    fn stream_partition(&self, idx: usize) -> Box<dyn Iterator<Item = T> + '_>
    where
        T: Clone + 'static,
    {
        Box::new(take_rows(self.compute_partition_shared(idx)).into_iter())
    }
    /// Human-readable node label for `explain()`.
    fn label(&self) -> String;
    /// Child lineage labels (already-rendered subtrees).
    fn explain_children(&self, indent: usize, out: &mut String);
    /// Number of stages (shuffle boundaries + 1) along the deepest lineage
    /// path ending at this node.
    fn stages(&self) -> usize;
}

/// Upcast an op handle to its type-free lineage view.
pub(crate) fn up<T>(op: &Arc<dyn Op<T>>) -> &dyn Lineage {
    &**op
}

/// Take ownership of a shared partition: free when the handle is unique
/// (the default `compute_partition_shared` wrapper), one clone when the
/// rows are resident elsewhere (a source or cache keeps them).
pub(crate) fn take_rows<T: Clone>(shared: Arc<Vec<T>>) -> Vec<T> {
    Arc::try_unwrap(shared).unwrap_or_else(|kept| (*kept).clone())
}

/// A lazy, partitioned, immutable collection — the engine's RDD analogue.
///
/// Cloning a `Dataset` clones the recipe (an `Arc`), not the data.
pub struct Dataset<T> {
    pub(crate) op: Arc<dyn Op<T>>,
    pub(crate) opt: OptimizerConfig,
    /// Counter block charged by stores built for *subsequently created*
    /// operations (spill/unspill traffic); see [`Dataset::with_stats`].
    pub(crate) stats: Option<Arc<peachy_cluster::CommStats>>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Self {
            op: Arc::clone(&self.op),
            opt: self.opt,
            stats: self.stats.clone(),
        }
    }
}

// ---------- auto-cache (optimizer-armed shared-subtree memo) ----------

/// A dormant per-partition cache the optimizer can arm at action time.
///
/// Until armed this is a no-op; once [`optimize::prepare_action`] observes
/// the owning node consumed by more than one action (and the cost model
/// approves), computed partitions are pinned exactly like an explicit
/// [`Dataset::cache`].
pub(crate) struct AutoCache<T> {
    armed: AtomicBool,
    store: PartitionStore<T>,
}

impl<T> AutoCache<T> {
    pub(crate) fn new(partitions: usize, cfg: StoreConfig) -> Self {
        Self {
            armed: AtomicBool::new(false),
            store: PartitionStore::new(partitions, cfg),
        }
    }
    pub(crate) fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }
    pub(crate) fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }
    /// The cache store's residency for plan rendering; `None` until armed
    /// (an unarmed cache holds nothing, so it has no residency to report).
    pub(crate) fn residency(&self, est_bytes: Option<u64>) -> Option<crate::store::Residency> {
        if !self.armed() {
            return None;
        }
        self.store.residency(est_bytes)
    }
}

impl<T: SpillRow> AutoCache<T> {
    /// Serve partition `idx` through the cache (must be armed).
    pub(crate) fn get_or_init(
        &self,
        idx: usize,
        compute: impl FnOnce() -> Vec<T>,
    ) -> Arc<Vec<T>> {
        self.store.get_or_init(idx, || Arc::new(compute()))
    }

    /// A row cursor over an already-filled partition, if any — lets push
    /// consumers replay a spilled cache cell without rebuilding it.
    pub(crate) fn stream(&self, idx: usize) -> Option<crate::store::RowCursor<T>>
    where
        T: Clone,
    {
        self.store.stream(idx)
    }
}

// ---------- source ----------

struct Source<T> {
    // Partitions behind the storage seam: shared `Arc` cells by default
    // (so actions on an uncached dataset read the resident rows instead of
    // deep-cloning them per action), spilled to disk where the dataset's
    // byte budget says so.
    parts: PartitionStore<T>,
}

impl<T: Send + Sync + SpillRow> Op<T> for Source<T>
where
    T: Clone,
{
    fn partitions(&self) -> usize {
        self.parts.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        take_rows(self.compute_partition_shared(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        self.parts.load(idx).expect("source parts prefilled")
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        // Stream straight off the store cursor: resident rows are cloned
        // one at a time (no whole-partition clone even when a fused chain
        // consumes the source), and a spilled partition decodes row-by-row
        // off its file — it is never rebuilt in memory just to be pushed.
        for row in self.parts.stream(idx).expect("source parts prefilled") {
            emit(row);
        }
    }
    fn stream_partition(&self, idx: usize) -> Box<dyn Iterator<Item = T> + '_> {
        Box::new(self.parts.stream(idx).expect("source parts prefilled"))
    }
    fn label(&self) -> String {
        let n: usize = (0..self.parts.partitions())
            .map(|p| self.parts.part_len(p).unwrap_or(0))
            .sum();
        format!("Source[{} rows, {} partitions]", n, self.parts.partitions())
    }
    fn explain_children(&self, _indent: usize, _out: &mut String) {}
    fn stages(&self) -> usize {
        1
    }
}

impl<T: Clone + Send + Sync> Lineage for Source<T> {
    fn plan(&self) -> PlanNode {
        let est_bytes = Lineage::est_rows(self).map(|r| r * std::mem::size_of::<T>() as u64);
        PlanNode {
            id: self.lineage_id(),
            label: {
                let n: usize = (0..self.parts.partitions())
                    .map(|p| self.parts.part_len(p).unwrap_or(0))
                    .sum();
                format!("Source[{} rows, {} partitions]", n, self.parts.partitions())
            },
            kind: PlanKind::Source,
            partitions: self.parts.partitions(),
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: self.parts.residency(est_bytes),
            children: vec![],
        }
    }
    fn lineage_children(&self, _visit: &mut dyn FnMut(&dyn Lineage)) {}
    fn est_rows(&self) -> Option<u64> {
        Some(
            (0..self.parts.partitions())
                .map(|p| self.parts.part_len(p).unwrap_or(0) as u64)
                .sum(),
        )
    }
}

// ---------- narrow ops ----------

struct MapOp<U, T, F> {
    parent: Arc<dyn Op<U>>,
    f: F,
    name: &'static str,
    /// Whether this op may participate in push-based fusion (baked from
    /// the dataset's [`OptimizerConfig::fuse`] at construction).
    fuse: bool,
    auto: AutoCache<T>,
    consumed: AtomicU32,
    _marker: std::marker::PhantomData<fn(U) -> T>,
}

impl<U, T, F> MapOp<U, T, F>
where
    U: Send + Sync,
    T: Clone + Send + Sync,
    F: Fn(U, &mut dyn FnMut(T)) + Send + Sync,
{
    /// One un-cached evaluation of the partition: fused (one push-based
    /// pass through the whole narrow chain) or naive (materialize the
    /// parent, then transform).
    fn compute_raw(&self, idx: usize) -> Vec<T> {
        let mut out = Vec::new();
        if self.fuse {
            let mut emit = |t: T| out.push(t);
            self.parent.push_partition(idx, &mut |u| (self.f)(u, &mut emit));
        } else {
            let input = self.parent.compute_partition(idx);
            out.reserve(input.len());
            let mut emit = |t: T| out.push(t);
            for row in input {
                (self.f)(row, &mut emit);
            }
        }
        out
    }
}

impl<U, T, F> Op<T> for MapOp<U, T, F>
where
    U: Send + Sync,
    T: Clone + Send + Sync + SpillRow,
    F: Fn(U, &mut dyn FnMut(T)) + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        if self.auto.armed() {
            return (*self.compute_partition_shared(idx)).clone();
        }
        self.compute_raw(idx)
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        if self.auto.armed() {
            return self.auto.get_or_init(idx, || self.compute_raw(idx));
        }
        Arc::new(self.compute_raw(idx))
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        if self.auto.armed() {
            // A filled (possibly spilled) cache cell replays through the
            // cursor — no rebuild. The first consumer computes and fills.
            if let Some(cursor) = self.auto.stream(idx) {
                for row in cursor {
                    emit(row);
                }
                return;
            }
            for row in self.compute_partition_shared(idx).iter() {
                emit(row.clone());
            }
            return;
        }
        if self.fuse {
            self.parent.push_partition(idx, &mut |u| (self.f)(u, &mut *emit));
        } else {
            for row in self.compute_raw(idx) {
                emit(row);
            }
        }
    }
    fn stream_partition(&self, idx: usize) -> Box<dyn Iterator<Item = T> + '_> {
        // An armed, filled cache cell replays through the cursor; anything
        // else falls back to materialize-and-drain (the pull consumer
        // cannot drive a push-fused chain without buffering it anyway).
        if self.auto.armed() {
            if let Some(cursor) = self.auto.stream(idx) {
                return Box::new(cursor);
            }
        }
        Box::new(take_rows(self.compute_partition_shared(idx)).into_iter())
    }
    fn label(&self) -> String {
        self.name.to_string()
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

impl<U, T, F> Lineage for MapOp<U, T, F>
where
    U: Send + Sync,
    T: Clone + Send + Sync,
    F: Fn(U, &mut dyn FnMut(T)) + Send + Sync,
{
    fn plan(&self) -> PlanNode {
        PlanNode {
            id: self.lineage_id(),
            label: self.name.to_string(),
            kind: PlanKind::Narrow {
                fused: self.fuse,
                auto_cached: self.auto.armed(),
                consumed: self.consumed.load(Ordering::Relaxed),
            },
            partitions: self.parent.partitions(),
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: self.auto.residency(Lineage::est_cache_bytes(self)),
            children: vec![up(&self.parent).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.parent));
    }
    fn note_consumed(&self) -> Option<u32> {
        Some(self.consumed.fetch_add(1, Ordering::Relaxed) + 1)
    }
    fn est_rows(&self) -> Option<u64> {
        // Filters shrink and flat_maps grow; the parent count is the best
        // static estimate available (exact for plain maps).
        up(&self.parent).est_rows()
    }
    fn est_cache_bytes(&self) -> Option<u64> {
        Lineage::est_rows(self).map(|r| r * std::mem::size_of::<T>() as u64)
    }
    fn arm_auto_cache(&self) {
        self.auto.arm();
    }
}

struct MapPartitionsOp<T, U, F> {
    parent: Arc<dyn Op<T>>,
    f: F,
    auto: AutoCache<U>,
    consumed: AtomicU32,
    _marker: std::marker::PhantomData<fn(T) -> U>,
}

impl<T, U, F> Op<U> for MapPartitionsOp<T, U, F>
where
    T: Send + Sync,
    U: Clone + Send + Sync + SpillRow,
    F: Fn(Vec<T>) -> Vec<U> + Send + Sync,
{
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<U> {
        if self.auto.armed() {
            return (*self.compute_partition_shared(idx)).clone();
        }
        (self.f)(self.parent.compute_partition(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<U>> {
        if self.auto.armed() {
            return self
                .auto
                .get_or_init(idx, || (self.f)(self.parent.compute_partition(idx)));
        }
        Arc::new(self.compute_partition(idx))
    }
    fn label(&self) -> String {
        "MapPartitions".to_string()
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

impl<T, U, F> Lineage for MapPartitionsOp<T, U, F>
where
    T: Send + Sync,
    U: Clone + Send + Sync,
    F: Fn(Vec<T>) -> Vec<U> + Send + Sync,
{
    fn plan(&self) -> PlanNode {
        PlanNode {
            id: self.lineage_id(),
            label: "MapPartitions".to_string(),
            kind: PlanKind::NarrowBarrier,
            partitions: self.parent.partitions(),
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<U>(),
            measured_bytes: None,
            residency: self.auto.residency(Lineage::est_cache_bytes(self)),
            children: vec![up(&self.parent).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.parent));
    }
    fn note_consumed(&self) -> Option<u32> {
        Some(self.consumed.fetch_add(1, Ordering::Relaxed) + 1)
    }
    fn est_rows(&self) -> Option<u64> {
        up(&self.parent).est_rows()
    }
    fn est_cache_bytes(&self) -> Option<u64> {
        Lineage::est_rows(self).map(|r| r * std::mem::size_of::<U>() as u64)
    }
    fn arm_auto_cache(&self) {
        self.auto.arm();
    }
}

struct UnionOp<T> {
    left: Arc<dyn Op<T>>,
    right: Arc<dyn Op<T>>,
}

impl<T: Send + Sync> Op<T> for UnionOp<T> {
    fn partitions(&self) -> usize {
        self.left.partitions() + self.right.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        let l = self.left.partitions();
        if idx < l {
            self.left.compute_partition(idx)
        } else {
            self.right.compute_partition(idx - l)
        }
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        let l = self.left.partitions();
        if idx < l {
            self.left.compute_partition_shared(idx)
        } else {
            self.right.compute_partition_shared(idx - l)
        }
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        // Pass-through: fusion crosses the union boundary.
        let l = self.left.partitions();
        if idx < l {
            self.left.push_partition(idx, emit);
        } else {
            self.right.push_partition(idx - l, emit);
        }
    }
    fn label(&self) -> String {
        "Union".to_string()
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.left, indent, out);
        explain_into(&*self.right, indent, out);
    }
    fn stages(&self) -> usize {
        self.left.stages().max(self.right.stages())
    }
}

impl<T: Send + Sync> Lineage for UnionOp<T> {
    fn plan(&self) -> PlanNode {
        PlanNode {
            id: self.lineage_id(),
            label: "Union".to_string(),
            kind: PlanKind::Union,
            partitions: self.left.partitions() + self.right.partitions(),
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: None,
            children: vec![up(&self.left).plan(), up(&self.right).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.left));
        visit(up(&self.right));
    }
    fn est_rows(&self) -> Option<u64> {
        Some(up(&self.left).est_rows()? + up(&self.right).est_rows()?)
    }
}

// ---------- cache ----------

struct CacheOp<T> {
    parent: Arc<dyn Op<T>>,
    store: PartitionStore<T>,
    hits: AtomicU64,
}

impl<T: Clone + Send + Sync + SpillRow> Op<T> for CacheOp<T> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        take_rows(self.compute_partition_shared(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        if self.store.is_filled(idx) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        self.store
            .get_or_init(idx, || self.parent.compute_partition_shared(idx))
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        // A filled cell (resident or spilled) replays through the cursor,
        // so a spilled cache is never rebuilt just to be pushed downstream.
        if let Some(cursor) = self.store.stream(idx) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            for row in cursor {
                emit(row);
            }
            return;
        }
        for row in self.compute_partition_shared(idx).iter() {
            emit(row.clone());
        }
    }
    fn stream_partition(&self, idx: usize) -> Box<dyn Iterator<Item = T> + '_> {
        if let Some(cursor) = self.store.stream(idx) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Box::new(cursor);
        }
        Box::new(take_rows(self.compute_partition_shared(idx)).into_iter())
    }
    fn label(&self) -> String {
        "Cache".to_string()
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

impl<T: Clone + Send + Sync> Lineage for CacheOp<T> {
    fn plan(&self) -> PlanNode {
        let est_bytes = Lineage::est_rows(self).map(|r| r * std::mem::size_of::<T>() as u64);
        PlanNode {
            id: self.lineage_id(),
            label: "Cache".to_string(),
            kind: PlanKind::Cache,
            partitions: self.parent.partitions(),
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: self.store.residency(est_bytes),
            children: vec![up(&self.parent).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.parent));
    }
    fn est_rows(&self) -> Option<u64> {
        up(&self.parent).est_rows()
    }
}

// ---------- repartition (wide, round-robin) ----------

struct RepartitionOp<T> {
    parent: Arc<dyn Op<T>>,
    target: usize,
    store: PartitionStore<T>,
}

impl<T: Clone + Send + Sync + SpillRow> RepartitionOp<T> {
    fn ensure_filled(&self) {
        self.store.fill_once(|| {
            let inputs: Vec<Vec<T>> = (0..self.parent.partitions())
                .into_par_iter()
                .map(|i| self.parent.compute_partition(i))
                .collect();
            let mut out: Vec<Vec<T>> = (0..self.target).map(|_| Vec::new()).collect();
            for (i, row) in inputs.into_iter().flatten().enumerate() {
                out[i % self.target].push(row);
            }
            out
        });
    }
}

impl<T: Clone + Send + Sync + SpillRow> Op<T> for RepartitionOp<T> {
    fn partitions(&self) -> usize {
        self.target
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        take_rows(self.compute_partition_shared(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        self.ensure_filled();
        self.store.load(idx).expect("repartition store filled")
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        // A spilled output partition streams off its cursor instead of
        // being rebuilt (the materialization barrier itself is inherent:
        // round-robin needs every input first).
        self.ensure_filled();
        for row in self.store.stream(idx).expect("repartition store filled") {
            emit(row);
        }
    }
    fn stream_partition(&self, idx: usize) -> Box<dyn Iterator<Item = T> + '_> {
        self.ensure_filled();
        Box::new(self.store.stream(idx).expect("repartition store filled"))
    }
    fn label(&self) -> String {
        format!("Repartition[{}] === stage boundary ===", self.target)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages() + 1
    }
}

impl<T: Clone + Send + Sync> Lineage for RepartitionOp<T> {
    fn plan(&self) -> PlanNode {
        let est_bytes = Lineage::est_rows(self).map(|r| r * std::mem::size_of::<T>() as u64);
        PlanNode {
            id: self.lineage_id(),
            label: format!("Repartition[{}] === stage boundary ===", self.target),
            kind: PlanKind::Repartition,
            partitions: self.target,
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: self.store.residency(est_bytes),
            children: vec![up(&self.parent).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.parent));
    }
    fn est_rows(&self) -> Option<u64> {
        up(&self.parent).est_rows()
    }
}

// ---------- retry (failure-aware partition executor) ----------

struct RetryOp<T> {
    parent: Arc<dyn Op<T>>,
    policy: RetryPolicy,
    retries: AtomicU64,
}

impl<T> RetryOp<T> {
    /// Run `run` under the retry policy, re-raising the last panic once
    /// the attempt budget is spent.
    fn run_bounded<R>(&self, run: impl Fn() -> R) -> R {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&run)) {
                Ok(rows) => return rows,
                Err(payload) => {
                    if attempt >= self.policy.max_attempts {
                        std::panic::resume_unwind(payload);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.policy.sleep_before_retry(attempt);
                }
            }
        }
    }
}

impl<T: Send + Sync> Op<T> for RetryOp<T> {
    fn partitions(&self) -> usize {
        self.parent.partitions()
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        self.run_bounded(|| self.parent.compute_partition(idx))
    }
    fn compute_partition_shared(&self, idx: usize) -> Arc<Vec<T>> {
        self.run_bounded(|| self.parent.compute_partition_shared(idx))
    }
    // No push_partition override: retry is deliberately a fusion barrier.
    // A push-through retry that re-ran a panicking parent after rows had
    // already been emitted would duplicate them downstream; the default
    // (materialize under run_bounded, then replay) keeps retries atomic.
    fn label(&self) -> String {
        format!("Retry[max {} attempts]", self.policy.max_attempts)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

impl<T: Send + Sync> Lineage for RetryOp<T> {
    fn plan(&self) -> PlanNode {
        PlanNode {
            id: self.lineage_id(),
            label: Op::label(self),
            kind: PlanKind::Retry,
            partitions: self.parent.partitions(),
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: None,
            children: vec![up(&self.parent).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.parent));
    }
    fn est_rows(&self) -> Option<u64> {
        up(&self.parent).est_rows()
    }
}

/// Render one lineage node and its children, indenting per level.
pub(crate) fn explain_into<T>(op: &dyn Op<T>, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(&op.label());
    out.push('\n');
    op.explain_children(indent + 1, out);
}

// ---------- public API ----------

impl<T: Clone + Send + Sync + SpillRow + 'static> Dataset<T> {
    /// Create a dataset from a vector, split into `partitions` contiguous
    /// blocks (balanced, like a file read).
    pub fn from_vec(data: Vec<T>, partitions: usize) -> Self {
        Self::from_vec_with(data, partitions, OptimizerConfig::default())
    }

    /// Like [`Dataset::from_vec`], but under an explicit optimizer
    /// configuration — in particular, a [`OptimizerConfig::spill_budget`]
    /// applies to the source partitions themselves, so even the input can
    /// live (partly) on disk.
    pub fn from_vec_with(data: Vec<T>, partitions: usize, cfg: OptimizerConfig) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let n = data.len();
        let mut parts: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
        if n > 0 {
            let base = n / partitions;
            let extra = n % partitions;
            let mut iter = data.into_iter();
            for (r, part) in parts.iter_mut().enumerate() {
                let len = base + usize::from(r < extra);
                part.extend(iter.by_ref().take(len));
            }
        }
        Self {
            op: Arc::new(Source {
                parts: PartitionStore::prefilled(
                    parts,
                    StoreConfig {
                        budget: cfg.spill_budget,
                        stats: None,
                        stream: cfg.stream_spills,
                    },
                ),
            }),
            opt: cfg,
            stats: None,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.op.partitions()
    }

    /// The optimizer configuration derived datasets inherit.
    pub fn optimizer_config(&self) -> OptimizerConfig {
        self.opt
    }

    /// Same lineage, different optimizer configuration for *subsequently
    /// built* operations (fusion and elision decisions are baked into each
    /// op at construction; already-built upstream nodes keep theirs).
    pub fn with_optimizer(&self, cfg: OptimizerConfig) -> Dataset<T> {
        Dataset {
            op: Arc::clone(&self.op),
            opt: cfg,
            stats: self.stats.clone(),
        }
    }

    /// Attach a shared counter block. Stores built by *subsequently
    /// created* operations (caches, shuffle buckets, repartitions) charge
    /// their spill/unspill traffic to it — already-built upstream nodes
    /// keep whatever block they were constructed with.
    pub fn with_stats(&self, stats: Arc<peachy_cluster::CommStats>) -> Dataset<T> {
        Dataset {
            op: Arc::clone(&self.op),
            opt: self.opt,
            stats: Some(stats),
        }
    }

    /// The store configuration ops built from this dataset hand their
    /// partition stores: the optimizer's byte budget plus the attached
    /// counter block.
    pub(crate) fn store_cfg(&self) -> StoreConfig {
        StoreConfig {
            budget: self.opt.spill_budget,
            stats: self.stats.clone(),
            stream: self.opt.stream_spills,
        }
    }

    /// Internal constructor for row-wise narrow ops.
    fn narrow<U, F>(&self, name: &'static str, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + SpillRow + 'static,
        F: Fn(T, &mut dyn FnMut(U)) + Send + Sync + 'static,
    {
        Dataset {
            op: Arc::new(MapOp {
                parent: Arc::clone(&self.op),
                f,
                name,
                fuse: self.opt.fuse,
                auto: AutoCache::new(self.op.partitions(), self.store_cfg()),
                consumed: AtomicU32::new(0),
                _marker: std::marker::PhantomData,
            }),
            opt: self.opt,
            stats: self.stats.clone(),
        }
    }

    /// Narrow: apply `f` to every row.
    pub fn map<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + SpillRow + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        self.narrow("Map", move |row, out| out(f(row)))
    }

    /// Narrow: keep rows satisfying the predicate.
    pub fn filter<F>(&self, pred: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        self.narrow("Filter", move |row: T, out| {
            if pred(&row) {
                out(row);
            }
        })
    }

    /// Narrow: expand each row into zero or more rows.
    pub fn flat_map<U, I, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + SpillRow + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync + 'static,
    {
        self.narrow("FlatMap", move |row, out| {
            for item in f(row) {
                out(item);
            }
        })
    }

    /// Narrow: transform a whole partition at once (Spark's
    /// `mapPartitions`) — the hook for per-partition algorithms such as
    /// map-side combining.
    pub fn map_partitions<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Clone + Send + Sync + SpillRow + 'static,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        Dataset {
            op: Arc::new(MapPartitionsOp {
                parent: Arc::clone(&self.op),
                f,
                auto: AutoCache::new(self.op.partitions(), self.store_cfg()),
                consumed: AtomicU32::new(0),
                _marker: std::marker::PhantomData,
            }),
            opt: self.opt,
            stats: self.stats.clone(),
        }
    }

    /// Narrow: concatenate two datasets (partitions of both are preserved).
    pub fn union_with(&self, other: &Dataset<T>) -> Dataset<T> {
        Dataset {
            op: Arc::new(UnionOp {
                left: Arc::clone(&self.op),
                right: Arc::clone(&other.op),
            }),
            opt: self.opt,
            stats: self.stats.clone(),
        }
    }

    /// Attach keys: produce a keyed dataset for wide operations.
    pub fn key_by<K, F>(&self, f: F) -> crate::keyed::KeyedDataset<K, T>
    where
        K: Clone + Send + Sync + SpillRow + std::hash::Hash + Eq + 'static,
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        crate::keyed::KeyedDataset::from_dataset(self.map(move |row| (f(&row), row)))
    }

    /// Pin this dataset's partitions after first computation — in memory,
    /// or on disk where the byte budget says so.
    pub fn cache(&self) -> Dataset<T> {
        let parts = self.op.partitions();
        Dataset {
            op: Arc::new(CacheOp {
                parent: Arc::clone(&self.op),
                store: PartitionStore::new(parts, self.store_cfg()),
                hits: AtomicU64::new(0),
            }),
            opt: self.opt,
            stats: self.stats.clone(),
        }
    }

    /// Make partition evaluation failure-aware: a partition whose compute
    /// panics (a flaky UDF, a simulated executor loss) is retried up to
    /// `policy.max_attempts` times with the policy's backoff — Spark's
    /// task-retry / Parsl's app-retry behaviour on the lineage graph. The
    /// panic is re-raised once the budget is exhausted. Because lineage
    /// recomputes from the parent each attempt (caches left uninitialized
    /// by a panicking compute are retried through), a transient failure is
    /// invisible in the action's result.
    pub fn with_retry(&self, policy: RetryPolicy) -> Dataset<T> {
        assert!(policy.max_attempts >= 1, "max_attempts must be >= 1");
        Dataset {
            op: Arc::new(RetryOp {
                parent: Arc::clone(&self.op),
                policy,
                retries: AtomicU64::new(0),
            }),
            opt: self.opt,
            stats: self.stats.clone(),
        }
    }

    /// Wide: redistribute rows round-robin over `target` partitions.
    pub fn repartition(&self, target: usize) -> Dataset<T> {
        assert!(target > 0, "need at least one partition");
        Dataset {
            op: Arc::new(RepartitionOp {
                parent: Arc::clone(&self.op),
                target,
                store: PartitionStore::new(target, self.store_cfg()),
            }),
            opt: self.opt,
            stats: self.stats.clone(),
        }
    }

    // ---------- actions ----------

    /// The optimizer's runtime pass, run at the start of every action:
    /// count consumptions and arm auto-caches where caching pays.
    fn prepare(&self) {
        optimize::prepare_action(up(&self.op), &self.opt);
    }

    /// Action: materialize every row (partitions evaluated in parallel,
    /// concatenated in partition order). Reads the shared-partition path,
    /// so resident rows (sources, caches) are cloned once into the output
    /// rather than once per lineage hop.
    pub fn collect(&self) -> Vec<T> {
        self.prepare();
        let parts: Vec<Arc<Vec<T>>> = (0..self.op.partitions())
            .into_par_iter()
            .map(|i| self.op.compute_partition_shared(i))
            .collect();
        let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for part in parts {
            out.extend(take_rows(part));
        }
        out
    }

    /// Action: number of rows. Counts through the shared handles — no row
    /// is cloned.
    pub fn count(&self) -> usize {
        self.prepare();
        (0..self.op.partitions())
            .into_par_iter()
            .map(|i| self.op.compute_partition_shared(i).len())
            .sum()
    }

    /// Action: at most `n` rows, from the earliest partitions (partitions
    /// are evaluated lazily one at a time, like Spark's `take`). Only the
    /// taken prefix is cloned when the partition is resident elsewhere.
    pub fn take(&self, n: usize) -> Vec<T> {
        self.prepare();
        let mut out = Vec::with_capacity(n);
        for i in 0..self.op.partitions() {
            if out.len() >= n {
                break;
            }
            let need = n - out.len();
            match Arc::try_unwrap(self.op.compute_partition_shared(i)) {
                Ok(part) => out.extend(part.into_iter().take(need)),
                Err(resident) => out.extend(resident.iter().take(need).cloned()),
            }
        }
        out
    }

    /// Action: fold all rows with an associative, commutative operator.
    /// Returns `None` for an empty dataset.
    pub fn reduce<F>(&self, f: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Send + Sync,
    {
        self.prepare();
        let parts: Vec<Option<T>> = (0..self.op.partitions())
            .into_par_iter()
            .map(|i| take_rows(self.op.compute_partition_shared(i)).into_iter().reduce(&f))
            .collect();
        parts.into_iter().flatten().reduce(&f)
    }

    /// Action: like [`Dataset::collect`], but partition evaluation is
    /// scheduled by a cluster-layer [`Executor`] (Seq / Rayon / Cluster) —
    /// the bridge the optimizer equivalence suite uses to pin plans across
    /// backends. Output is bit-identical to `collect()` on every backend:
    /// partitions are assigned to parts in contiguous blocks and merged in
    /// part order.
    pub fn collect_with(&self, exec: &Executor) -> Vec<T>
    where
        T: ByteSized + 'static,
    {
        self.prepare();
        let n = self.op.partitions();
        let exec = exec.shrink_to(n);
        let dist = Block::new(n, exec.parts_for(n));
        let groups: Vec<Vec<Vec<T>>> = exec.map_parts(&dist, |_, range| {
            range.map(|i| self.op.compute_partition(i)).collect()
        });
        let mut out = Vec::new();
        for group in groups {
            for part in group {
                out.extend(part);
            }
        }
        out
    }

    /// Action: like [`Dataset::count`], but scheduled by an [`Executor`].
    pub fn count_with(&self, exec: &Executor) -> usize {
        self.prepare();
        let n = self.op.partitions();
        let exec = exec.shrink_to(n);
        let dist = Block::new(n, exec.parts_for(n));
        let per_part: Vec<u64> = exec.map_parts(&dist, |_, range| {
            range
                .map(|i| self.op.compute_partition_shared(i).len() as u64)
                .sum::<u64>()
        });
        per_part.into_iter().sum::<u64>() as usize
    }

    /// Number of execution stages: shuffle boundaries + 1 along the
    /// deepest lineage path — the quantity `explain()` marks visually.
    pub fn num_stages(&self) -> usize {
        self.op.stages()
    }

    /// Render the lineage tree, with stage boundaries marked at wide
    /// operations.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        explain_into(&*self.op, 0, &mut out);
        out
    }

    /// The optimizer's view of this plan: naive and optimized renderings
    /// plus predicted shuffle bytes and a rewrite summary.
    pub fn explain_plans(&self) -> PlanReport {
        optimize::report_for(up(&self.op))
    }
}

struct CoalesceOp<T> {
    parent: Arc<dyn Op<T>>,
    group: usize,
    target: usize,
}

impl<T: Send + Sync> Op<T> for CoalesceOp<T> {
    fn partitions(&self) -> usize {
        self.target
    }
    fn compute_partition(&self, idx: usize) -> Vec<T> {
        let sources = self.parent.partitions();
        let start = idx * self.group;
        let end = ((idx + 1) * self.group).min(sources);
        let mut out = Vec::new();
        for s in start..end {
            out.extend(self.parent.compute_partition(s));
        }
        out
    }
    fn push_partition(&self, idx: usize, emit: &mut dyn FnMut(T)) {
        // Order-preserving pass-through: fusion crosses the merge.
        let sources = self.parent.partitions();
        let start = idx * self.group;
        let end = ((idx + 1) * self.group).min(sources);
        for s in start..end {
            self.parent.push_partition(s, emit);
        }
    }
    fn label(&self) -> String {
        format!("Coalesce[{}]", self.target)
    }
    fn explain_children(&self, indent: usize, out: &mut String) {
        explain_into(&*self.parent, indent, out);
    }
    fn stages(&self) -> usize {
        self.parent.stages()
    }
}

impl<T: Send + Sync> Lineage for CoalesceOp<T> {
    fn plan(&self) -> PlanNode {
        PlanNode {
            id: self.lineage_id(),
            label: Op::label(self),
            kind: PlanKind::NarrowBarrier,
            partitions: self.target,
            est_rows: Lineage::est_rows(self),
            row_bytes: std::mem::size_of::<T>(),
            measured_bytes: None,
            residency: None,
            children: vec![up(&self.parent).plan()],
        }
    }
    fn lineage_children(&self, visit: &mut dyn FnMut(&dyn Lineage)) {
        visit(up(&self.parent));
    }
    fn est_rows(&self) -> Option<u64> {
        up(&self.parent).est_rows()
    }
}

impl<T: Clone + Send + Sync + 'static> Dataset<T> {
    /// Internal: group `per` consecutive source partitions into each of
    /// `target` output partitions (order-preserving narrow-ish merge).
    pub(crate) fn from_op_groups(parent: Dataset<T>, per: usize, target: usize) -> Dataset<T> {
        let opt = parent.opt;
        let stats = parent.stats.clone();
        Dataset {
            op: Arc::new(CoalesceOp {
                parent: parent.op,
                group: per,
                target,
            }),
            opt,
            stats,
        }
    }
}

impl Dataset<String> {
    /// Parse the lines of a text blob into a dataset of `String` rows —
    /// the ingestion step of every pipeline.
    pub fn from_text(text: &str, partitions: usize) -> Dataset<String> {
        Dataset::from_vec(text.lines().map(String::from).collect(), partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_splits_lines() {
        let ds = Dataset::from_text("a\nb\nc\n", 2);
        assert_eq!(ds.collect(), vec!["a", "b", "c"]);
    }

    #[test]
    fn from_vec_balances_partitions() {
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 4);
        assert_eq!(ds.num_partitions(), 4);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn from_vec_more_partitions_than_rows() {
        let ds = Dataset::from_vec(vec![1, 2], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.count(), 2);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::from_vec(Vec::<i32>::new(), 3);
        assert_eq!(ds.count(), 0);
        assert!(ds.collect().is_empty());
        assert_eq!(ds.reduce(|a, b| a + b), None);
    }

    #[test]
    fn map_filter_flat_map_chain() {
        let ds = Dataset::from_vec((1..=10).collect::<Vec<i32>>(), 3)
            .map(|x| x * 2)
            .filter(|&x| x % 3 == 0)
            .flat_map(|x| vec![x, x + 1]);
        assert_eq!(ds.collect(), vec![6, 7, 12, 13, 18, 19]);
    }

    #[test]
    fn fused_and_naive_chains_are_bit_identical() {
        let data: Vec<i32> = (0..500).collect();
        let build = |cfg: OptimizerConfig| {
            Dataset::from_vec(data.clone(), 7)
                .with_optimizer(cfg)
                .map(|x| x * 3)
                .filter(|&x| x % 2 == 0)
                .flat_map(|x| vec![x, x + 1])
                .map(|x| x - 1)
        };
        let fused = build(OptimizerConfig::default());
        let naive = build(OptimizerConfig::naive());
        assert_eq!(fused.collect(), naive.collect());
        assert_eq!(fused.count(), naive.count());
        assert_eq!(fused.take(13), naive.take(13));
    }

    #[test]
    fn fusion_streams_without_materializing_intermediates() {
        // Observable allocation proxy: a clone-counting row. A fused chain
        // clones each source row exactly once (out of the resident source);
        // the naive chain clones once per materialized hop boundary too,
        // but the *source* clone count is identical — so instead we pin the
        // per-op pass structure via call order: in a fused chain the map
        // sees row i immediately before the filter sees row i.
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        let ds = Dataset::from_vec((0..3).collect::<Vec<i32>>(), 1)
            .map(move |x| {
                o1.lock().push(format!("map{x}"));
                x
            })
            .filter(move |&x| {
                o2.lock().push(format!("filter{x}"));
                true
            });
        ds.collect();
        assert_eq!(
            *order.lock(),
            vec!["map0", "filter0", "map1", "filter1", "map2", "filter2"],
            "fused chain interleaves per-row, not per-pass"
        );

        // The naive configuration runs pass-by-pass.
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        let ds = Dataset::from_vec((0..3).collect::<Vec<i32>>(), 1)
            .with_optimizer(OptimizerConfig::naive())
            .map(move |x| {
                o1.lock().push(format!("map{x}"));
                x
            })
            .filter(move |&x| {
                o2.lock().push(format!("filter{x}"));
                true
            });
        ds.collect();
        assert_eq!(
            *order.lock(),
            vec!["map0", "map1", "map2", "filter0", "filter1", "filter2"],
            "naive chain materializes between ops"
        );
    }

    #[test]
    fn collect_preserves_order() {
        let data: Vec<i32> = (0..1000).collect();
        let ds = Dataset::from_vec(data.clone(), 7).map(|x| x);
        assert_eq!(ds.collect(), data);
    }

    #[test]
    fn take_is_prefix() {
        let ds = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 5);
        assert_eq!(ds.take(7), (0..7).collect::<Vec<_>>());
        assert_eq!(ds.take(0), Vec::<i32>::new());
        assert_eq!(ds.take(1000).len(), 100);
    }

    #[test]
    fn reduce_sums() {
        let ds = Dataset::from_vec((1..=100).collect::<Vec<u64>>(), 8);
        assert_eq!(ds.reduce(|a, b| a + b), Some(5050));
    }

    #[test]
    fn union_concatenates() {
        let a = Dataset::from_vec(vec![1, 2], 1);
        let b = Dataset::from_vec(vec![3, 4], 2);
        let u = a.union_with(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lazy_until_action() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2).map(|x| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(CALLS.load(Ordering::Relaxed), 0, "map must be lazy");
        ds.count();
        assert_eq!(CALLS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn cache_avoids_recomputation() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2)
            .map(move |x| {
                c.fetch_add(1, Ordering::Relaxed);
                x
            })
            .cache();
        ds.count();
        ds.count();
        ds.collect();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            10,
            "parent computed exactly once"
        );
    }

    #[test]
    fn auto_cache_arms_on_second_action() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        // 10k rows × 4 bytes clears the default cost threshold; NO
        // explicit .cache() anywhere.
        let ds = Dataset::from_vec((0..10_000).collect::<Vec<i32>>(), 4).map(move |x| {
            c.fetch_add(1, Ordering::Relaxed);
            x
        });
        ds.count();
        assert_eq!(calls.load(Ordering::Relaxed), 10_000);
        ds.count(); // second action arms the auto-cache, then fills it
        assert_eq!(calls.load(Ordering::Relaxed), 20_000);
        ds.count(); // third action reads the armed cache
        ds.collect();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            20_000,
            "auto-cache serves actions 3+ without recompute"
        );
    }

    #[test]
    fn auto_cache_respects_cost_threshold() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        // 10 rows × 4 bytes is far below the 1 KiB default threshold: the
        // optimizer must judge the cache not worth holding.
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2).map(move |x| {
            c.fetch_add(1, Ordering::Relaxed);
            x
        });
        for _ in 0..4 {
            ds.count();
        }
        assert_eq!(
            calls.load(Ordering::Relaxed),
            40,
            "tiny subtree recomputes: cache not worth its footprint"
        );
    }

    #[test]
    fn auto_cache_disabled_by_config() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let ds = Dataset::from_vec((0..10_000).collect::<Vec<i32>>(), 4)
            .with_optimizer(OptimizerConfig {
                auto_cache: false,
                ..OptimizerConfig::default()
            })
            .map(move |x| {
                c.fetch_add(1, Ordering::Relaxed);
                x
            });
        for _ in 0..3 {
            ds.count();
        }
        assert_eq!(calls.load(Ordering::Relaxed), 30_000, "auto-cache off");
    }

    #[test]
    fn auto_cache_shares_diamond_within_one_action() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let base = Dataset::from_vec((0..10_000).collect::<Vec<i32>>(), 4).map(move |x| {
            c.fetch_add(1, Ordering::Relaxed);
            x
        });
        // Diamond: both union branches consume `base` — one action, two
        // consumptions, armed before any partition computes.
        let diamond = base.map(|x| x + 1).union_with(&base.map(|x| x + 2));
        assert_eq!(diamond.count(), 20_000);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            10_000,
            "shared subtree computed once within the diamond"
        );
    }

    #[test]
    fn source_actions_share_resident_rows() {
        // A row type whose clones are observable: repeated actions on an
        // *uncached* dataset must read the source's resident rows, not
        // re-clone them per action.
        #[derive(Debug)]
        struct Row(u64, Arc<AtomicU64>);
        impl Clone for Row {
            fn clone(&self) -> Self {
                self.1.fetch_add(1, Ordering::Relaxed);
                Row(self.0, Arc::clone(&self.1))
            }
        }
        impl ByteSized for Row {
            fn approx_bytes(&self) -> usize {
                std::mem::size_of::<u64>()
            }
        }
        // Never actually spills (no budget here); the decode fabricates a
        // fresh counter, which is fine for a counting test row.
        impl SpillRow for Row {
            fn spill_encode(&self, out: &mut Vec<u8>) {
                self.0.spill_encode(out);
            }
            fn spill_decode(r: &mut crate::store::SpillReader<'_>) -> Self {
                Row(u64::spill_decode(r), Arc::new(AtomicU64::new(0)))
            }
        }
        let clones = Arc::new(AtomicU64::new(0));
        let data: Vec<Row> = (0..10).map(|i| Row(i, Arc::clone(&clones))).collect();
        let ds = Dataset::from_vec(data, 3);
        ds.count();
        ds.count();
        ds.count();
        assert_eq!(clones.load(Ordering::Relaxed), 0, "count clones nothing");
        assert_eq!(ds.take(4).len(), 4);
        assert_eq!(clones.load(Ordering::Relaxed), 4, "take clones its prefix only");
        let all = ds.collect();
        assert_eq!(all.len(), 10);
        assert_eq!(
            clones.load(Ordering::Relaxed),
            14,
            "collect clones each row exactly once"
        );
    }

    #[test]
    fn uncached_recomputes() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2).map(move |x| {
            c.fetch_add(1, Ordering::Relaxed);
            x
        });
        ds.count();
        ds.count();
        assert_eq!(calls.load(Ordering::Relaxed), 20, "no cache → recompute");
    }

    #[test]
    fn repartition_preserves_rows() {
        let ds = Dataset::from_vec((0..20).collect::<Vec<i32>>(), 2).repartition(5);
        assert_eq!(ds.num_partitions(), 5);
        let mut rows = ds.collect();
        rows.sort_unstable();
        assert_eq!(rows, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn explain_shows_lineage() {
        let ds = Dataset::from_vec(vec![1, 2, 3], 2)
            .map(|x| x)
            .filter(|_| true);
        let plan = ds.explain();
        assert!(plan.contains("Filter"));
        assert!(plan.contains("Map"));
        assert!(plan.contains("Source"));
    }

    #[test]
    fn explain_plans_reports_fused_runs() {
        let ds = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 4)
            .map(|x| x)
            .filter(|_| true)
            .map(|x| x + 1);
        let report = ds.explain_plans();
        assert_eq!(report.fused_runs, 1, "one run of three narrow ops");
        assert!(report.optimized.contains("Fused["));
        assert!(!report.naive.contains("Fused["));
        // The rendered report mentions both plans.
        let rendered = report.to_string();
        assert!(rendered.contains("naive plan:"));
        assert!(rendered.contains("optimized plan:"));

        let naive = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 4)
            .with_optimizer(OptimizerConfig::naive())
            .map(|x| x)
            .filter(|_| true);
        assert_eq!(naive.explain_plans().fused_runs, 0);
    }

    #[test]
    fn collect_with_matches_collect_on_all_backends() {
        let ds = Dataset::from_vec((0..200).collect::<Vec<i32>>(), 6)
            .map(|x| x * 2)
            .filter(|&x| x % 3 != 0);
        let reference = ds.collect();
        for exec in [Executor::seq(), Executor::rayon(3), Executor::cluster(4)] {
            assert_eq!(ds.collect_with(&exec), reference, "{exec:?}");
            assert_eq!(ds.count_with(&exec), reference.len(), "{exec:?}");
        }
    }

    #[test]
    fn retry_recovers_from_transient_panics() {
        use parking_lot::Mutex;
        use std::collections::HashSet;
        // Each partition's first computation dies; the retry re-runs it.
        let failed_once: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
        let f = Arc::clone(&failed_once);
        let ds = Dataset::from_vec((0..40).collect::<Vec<i32>>(), 4)
            .map_partitions(move |rows: Vec<i32>| {
                let key = rows.first().copied().unwrap_or(-1) as usize;
                if f.lock().insert(key) {
                    panic!("transient executor loss on partition starting at {key}");
                }
                rows
            })
            .with_retry(RetryPolicy::default());
        assert_eq!(ds.collect(), (0..40).collect::<Vec<_>>());
        assert_eq!(failed_once.lock().len(), 4, "every partition failed once");
    }

    #[test]
    #[should_panic(expected = "permanent failure")]
    fn retry_gives_up_after_max_attempts() {
        let ds = Dataset::from_vec(vec![1, 2, 3], 1)
            .map(|_: i32| -> i32 { panic!("permanent failure") })
            .with_retry(RetryPolicy {
                max_attempts: 2,
                backoff: std::time::Duration::ZERO,
            });
        ds.collect();
    }

    #[test]
    fn retry_appears_in_lineage_and_keeps_stages() {
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 2)
            .map(|x| x + 1)
            .with_retry(RetryPolicy::default());
        assert!(ds.explain().contains("Retry[max 3 attempts]"));
        assert_eq!(ds.num_stages(), 1, "retry is not a stage boundary");
        assert_eq!(ds.num_partitions(), 2);
    }

    #[test]
    fn retry_is_a_fusion_barrier() {
        use parking_lot::Mutex;
        use std::collections::HashSet;
        // A downstream narrow op fused through a retried parent must never
        // see duplicated rows from a retried (partially-emitted) attempt.
        let failed_once: Arc<Mutex<HashSet<i32>>> = Arc::new(Mutex::new(HashSet::new()));
        let f = Arc::clone(&failed_once);
        let ds = Dataset::from_vec((0..30).collect::<Vec<i32>>(), 3)
            .map(move |x| {
                // Die mid-partition, after earlier rows were produced.
                if x % 10 == 5 && f.lock().insert(x) {
                    panic!("transient mid-partition failure at {x}");
                }
                x
            })
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff: std::time::Duration::ZERO,
            })
            .map(|x| x) // fused downstream of the retry barrier
            .filter(|_| true);
        assert_eq!(ds.collect(), (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn stage_counting() {
        let base = Dataset::from_vec((0..50).collect::<Vec<i32>>(), 4);
        assert_eq!(base.num_stages(), 1);
        assert_eq!(
            base.map(|x| x).filter(|_| true).num_stages(),
            1,
            "narrow ops fuse"
        );
        assert_eq!(base.repartition(2).num_stages(), 2);
        let shuffled = base
            .key_by(|&x| x % 3)
            .reduce_by_key(|a, b| a + b)
            .rows()
            .map(|(_, v)| v);
        assert_eq!(shuffled.num_stages(), 2, "one shuffle boundary");
        let twice = shuffled
            .key_by(|&x| x)
            .group_by_key()
            .rows()
            .map(|(k, _)| k);
        assert_eq!(twice.num_stages(), 3, "two shuffle boundaries");
        // Union takes the deeper side.
        assert_eq!(base.union_with(&shuffled).num_stages(), 2);
    }
}
