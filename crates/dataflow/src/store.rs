//! The storage seam for resident partitions: byte-budgeted disk spill.
//!
//! Every holder of materialized partitions in the engine — source parts,
//! explicit cache cells, optimizer auto-cache cells, repartition outputs,
//! shuffle buckets, and memoized shuffle posts — keeps its rows in a
//! [`PartitionStore<T>`] instead of hand-rolling `OnceLock<Arc<Vec<T>>>`
//! cells. Without a byte budget (the default) the store *is* that cell
//! array — the mem-store mode, bit-for-bit the semantics the holders used
//! to implement themselves: first fill wins, later reads share the same
//! `Arc`. With a budget ([`OptimizerConfig::spill_budget`]) the store runs
//! in spill mode: partitions too big for their share of the budget are
//! encoded to a temp file ([`SpillRow`], a deterministic little-endian
//! format) and streamed back on access, so a pipeline's resident set stays
//! bounded while results remain bit-identical.
//!
//! # Determinism
//!
//! The core law (pinned in `tests/spill_laws.rs`): which partitions spill
//! is a pure function of (data, budget, config) — never of thread timing.
//!
//! * **Lazy holders** (caches, memoized shuffle posts) fill one partition
//!   at a time, in whatever order rayon schedules them. A shared
//!   "bytes-used-so-far" counter would make the spill set race-dependent,
//!   so lazy fills use a *fair-share* rule instead: partition `p` spills
//!   iff `bytes(p) × partitions > budget`. The decision reads only the
//!   partition's own size; any schedule produces the same spill set, and
//!   if every partition stays under its fair share the whole store is
//!   resident within budget.
//! * **Pre-sized holders** (shuffle buckets, repartition outputs, source
//!   parts) know every partition's exact byte size before any cell fills,
//!   so they pack greedily in index order: keep partitions resident while
//!   the running total fits the budget, spill the rest. Strictly better
//!   packing, still order-free — the sizes are data, not timing.
//!
//! # Streaming consumption
//!
//! Reading a spilled partition through [`PartitionStore::load`] rebuilds
//! it as one `Vec` — the budget bounds storage, not execution. The cursor
//! API ([`PartitionStore::stream`]) fixes that: it hands out a
//! [`RowCursor`] that decodes rows one at a time off a buffered file
//! reader (each row is length-prefixed in the spill format precisely so
//! the cursor can chunk its reads), and [`PartitionStore::spill_sink`]
//! is the write-side dual — rows are encoded straight to disk as a
//! producer pushes them, never concatenated in RAM. With
//! `StoreConfig::stream` set (the default), fused narrow chains and the
//! shuffle's route/merge passes pull from the cursor, so peak resident
//! memory stays bounded by the budget even *during* consumption. With it
//! cleared the cursor degrades to rebuild-on-access — the measurable
//! strawman E22 ablates against.
//!
//! Spill and unspill traffic is metered through the `CommStats` block
//! ([`CommStats::add_spill`] / [`CommStats::add_unspill`]), and every
//! materialization or streamed row raises the deterministic
//! `CommStats::peak_resident_bytes` high-water mark, so the replay-read
//! cost *and* the memory bound of a budgeted run are as observable as its
//! shuffle volume.
//!
//! [`OptimizerConfig::spill_budget`]: crate::optimize::OptimizerConfig::spill_budget
//! [`CommStats::add_spill`]: peachy_cluster::CommStats::add_spill
//! [`CommStats::add_unspill`]: peachy_cluster::CommStats::add_unspill

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use peachy_cluster::{ByteSized, CommStats};

// ---------- the deterministic row encoding ----------

/// A row that can round-trip through a spill file.
///
/// The encoding is fixed little-endian (floats via `to_bits`, lengths as
/// `u64` prefixes), so a spilled partition decodes to exactly the rows
/// that were written on any platform — bit-identity across budgets depends
/// on it. `ByteSized` is a supertrait because the budget that decides
/// *whether* to spill is enforced through the same byte accounting the
/// comm layer already uses.
pub trait SpillRow: ByteSized {
    /// Append this row's encoding to `out`.
    fn spill_encode(&self, out: &mut Vec<u8>);
    /// Decode one row from the reader (panics on a corrupt stream — spill
    /// files are written and read by the same process, so truncation is a
    /// bug, not an input error).
    fn spill_decode(r: &mut SpillReader<'_>) -> Self;
}

/// Cursor over a spill file's bytes.
pub struct SpillReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SpillReader<'a> {
    /// Wrap a byte buffer for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Read a fixed-size chunk.
    pub fn read_array<const N: usize>(&mut self) -> [u8; N] {
        let end = self.pos + N;
        let chunk: [u8; N] = self.buf[self.pos..end]
            .try_into()
            .expect("spill stream truncated");
        self.pos = end;
        chunk
    }

    /// Read a length-prefixed (`u64`) byte run.
    pub fn read_bytes(&mut self) -> &'a [u8] {
        let len = u64::from_le_bytes(self.read_array()) as usize;
        let end = self.pos + len;
        let run = &self.buf[self.pos..end];
        self.pos = end;
        run
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

macro_rules! spill_fixed_int {
    ($($t:ty),* $(,)?) => {$(
        impl SpillRow for $t {
            fn spill_encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn spill_decode(r: &mut SpillReader<'_>) -> Self {
                <$t>::from_le_bytes(r.read_array())
            }
        }
    )*};
}

spill_fixed_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

// Pointer-width ints travel as 64-bit so a spill file means the same thing
// on every platform.
impl SpillRow for usize {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        u64::from_le_bytes(r.read_array()) as usize
    }
}

impl SpillRow for isize {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_le_bytes());
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        i64::from_le_bytes(r.read_array()) as isize
    }
}

// Floats round-trip through their bit patterns: exact, NaN payloads and
// signed zeros included.
impl SpillRow for f32 {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        f32::from_bits(u32::from_le_bytes(r.read_array()))
    }
}

impl SpillRow for f64 {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        f64::from_bits(u64::from_le_bytes(r.read_array()))
    }
}

impl SpillRow for bool {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        r.read_array::<1>()[0] != 0
    }
}

impl SpillRow for char {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_le_bytes());
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        char::from_u32(u32::from_le_bytes(r.read_array())).expect("valid char scalar")
    }
}

impl SpillRow for () {
    fn spill_encode(&self, _out: &mut Vec<u8>) {}
    fn spill_decode(_r: &mut SpillReader<'_>) -> Self {}
}

impl SpillRow for String {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        String::from_utf8(r.read_bytes().to_vec()).expect("spilled string was utf8")
    }
}

/// Intern a decoded `&'static str` row in a process-wide cache.
///
/// Decoding a `&'static str` has to mint a `'static` string from file
/// bytes, which means leaking — but leaking *per decode* would grow
/// memory without bound as the same spilled partition is replayed (the
/// streaming cursor replays on every pass). The cache leaks each distinct
/// string exactly once; every later decode of the same bytes returns the
/// same pointer.
fn intern_static_str(s: &str) -> &'static str {
    static CACHE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut cache = CACHE.lock().expect("str intern cache poisoned");
    if let Some(hit) = cache.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    cache.insert(leaked);
    leaked
}

/// `&'static str` rows (common in tests and literals) decode through a
/// process-wide intern cache: the distinct strings of a static-str dataset
/// are a finite set fixed at compile time, so the cache is bounded even
/// though each entry is deliberately leaked to get the `'static` lifetime.
impl SpillRow for &'static str {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        let s = std::str::from_utf8(r.read_bytes()).expect("spilled str was utf8");
        intern_static_str(s)
    }
}

impl<T: SpillRow> SpillRow for Option<T> {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.spill_encode(out);
            }
        }
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        match r.read_array::<1>()[0] {
            0 => None,
            _ => Some(T::spill_decode(r)),
        }
    }
}

impl<T: SpillRow> SpillRow for Vec<T> {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for item in self {
            item.spill_encode(out);
        }
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        let len = u64::from_le_bytes(r.read_array()) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::spill_decode(r));
        }
        out
    }
}

impl<T: SpillRow, const N: usize> SpillRow for [T; N] {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.spill_encode(out);
        }
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::spill_decode(r));
        }
        match items.try_into() {
            Ok(array) => array,
            Err(_) => unreachable!("exactly N items decoded"),
        }
    }
}

macro_rules! spill_tuple {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: SpillRow),+> SpillRow for ($($name,)+) {
            fn spill_encode(&self, out: &mut Vec<u8>) {
                let ($($name,)+) = self;
                $($name.spill_encode(out);)+
            }
            fn spill_decode(r: &mut SpillReader<'_>) -> Self {
                ($(<$name>::spill_decode(r),)+)
            }
        }
    };
}

spill_tuple!(A);
spill_tuple!(A B);
spill_tuple!(A B C);
spill_tuple!(A B C D);
spill_tuple!(A B C D E);
spill_tuple!(A B C D E F);

// ---------- store configuration ----------

/// How a [`PartitionStore`] holds its partitions.
#[derive(Clone)]
pub struct StoreConfig {
    /// Resident byte budget. `None` (the default) is the mem-store mode:
    /// every partition stays in RAM and nothing ever touches disk.
    pub budget: Option<u64>,
    /// Counter block charged for spill writes and unspill reads.
    pub stats: Option<Arc<CommStats>>,
    /// Serve spilled partitions through the streaming cursor (the
    /// default). Cleared, [`PartitionStore::stream`] degrades to
    /// rebuild-on-access — the E22 strawman. Irrelevant without a budget
    /// (nothing ever spills).
    pub stream: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            budget: None,
            stats: None,
            stream: true,
        }
    }
}

impl std::fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreConfig")
            .field("budget", &self.budget)
            .field("stats", &self.stats.is_some())
            .field("stream", &self.stream)
            .finish()
    }
}

// ---------- the store ----------

enum Slot<T> {
    /// Rows pinned in RAM — the only variant a budget-less store creates.
    Resident(Arc<Vec<T>>),
    /// Rows encoded into `path`; decoded into a fresh `Arc` per access.
    Spilled {
        path: PathBuf,
        encoded_bytes: u64,
        row_count: usize,
    },
}

/// A fixed-arity array of once-fillable partition slots, each resident in
/// RAM or spilled to a temp file according to the byte budget. See the
/// module docs for the placement rules and the determinism argument.
pub struct PartitionStore<T> {
    cells: Box<[OnceLock<Slot<T>>]>,
    cfg: StoreConfig,
    /// Spill directory, created lazily on first spill; removed on drop.
    dir: OnceLock<PathBuf>,
    /// Guards one-shot batch fills ([`PartitionStore::fill_once`]).
    filled: OnceLock<()>,
    spilled_parts: AtomicU64,
    spilled_bytes: AtomicU64,
}

/// Process-unique suffix for spill directories, so two stores never share
/// one (paths stay collision-free even across identical pipelines).
fn next_store_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl<T> PartitionStore<T> {
    /// An empty store with `partitions` unfilled slots.
    pub fn new(partitions: usize, cfg: StoreConfig) -> Self {
        Self {
            cells: (0..partitions).map(|_| OnceLock::new()).collect(),
            cfg,
            dir: OnceLock::new(),
            filled: OnceLock::new(),
            spilled_parts: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
        }
    }

    /// Number of partition slots.
    pub fn partitions(&self) -> usize {
        self.cells.len()
    }

    /// Has slot `idx` been filled (resident or spilled)?
    pub fn is_filled(&self, idx: usize) -> bool {
        self.cells[idx].get().is_some()
    }

    /// Row count of slot `idx`, if filled — readable without touching disk.
    pub fn part_len(&self, idx: usize) -> Option<usize> {
        self.cells[idx].get().map(|slot| match slot {
            Slot::Resident(rows) => rows.len(),
            Slot::Spilled { row_count, .. } => *row_count,
        })
    }

    /// Partitions currently spilled to disk.
    pub fn spilled_parts(&self) -> u64 {
        self.spilled_parts.load(Ordering::Relaxed)
    }

    /// Encoded bytes currently spilled to disk.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// The store's spill directory, if anything has spilled yet.
    pub fn spill_dir(&self) -> Option<&Path> {
        self.dir.get().map(PathBuf::as_path)
    }

    /// Does this store serve spilled partitions through the streaming
    /// cursor? (Budgeted + `stream` — the route/merge passes pick their
    /// strategy off this.)
    pub fn streams(&self) -> bool {
        self.cfg.budget.is_some() && self.cfg.stream
    }

    /// Raise the peak-resident high-water mark for a materialization of
    /// `bytes` (no-op without a stats block).
    fn charge_peak(&self, bytes: u64) {
        if let Some(stats) = &self.cfg.stats {
            stats.charge_resident(bytes);
        }
    }

    /// This store's residency picture for plan rendering: `None` while no
    /// budget applies, the mem/spill decision (with `est_bytes` as the
    /// predicted volume where nothing has filled yet) otherwise.
    pub fn residency(&self, est_bytes: Option<u64>) -> Option<Residency> {
        let budget = self.cfg.budget?;
        let spilled_parts = self.spilled_parts() as usize;
        let spilled_bytes = self.spilled_bytes();
        let predicted_bytes = match est_bytes {
            Some(est) if est > budget => est,
            _ => 0,
        };
        if spilled_parts == 0 && predicted_bytes == 0 {
            Some(Residency::Mem { budget })
        } else if self.cfg.stream {
            Some(Residency::Stream {
                budget,
                spilled_parts,
                spilled_bytes,
                predicted_bytes,
            })
        } else {
            Some(Residency::Spill {
                budget,
                spilled_parts,
                spilled_bytes,
                predicted_bytes,
            })
        }
    }

    /// Which partitions of a pre-sized batch must spill: greedy first-fit
    /// in index order over the exact byte sizes (a pure function of sizes
    /// and budget).
    pub fn plan_presized(&self, sizes: &[u64]) -> Vec<bool> {
        let Some(budget) = self.cfg.budget else {
            return vec![false; sizes.len()];
        };
        let mut resident = 0u64;
        sizes
            .iter()
            .map(|&size| {
                if resident.saturating_add(size) <= budget {
                    resident += size;
                    false
                } else {
                    true
                }
            })
            .collect()
    }

    fn dir(&self) -> &Path {
        self.dir.get_or_init(|| {
            let dir = std::env::temp_dir()
                .join(format!("peachy-spill-{}", std::process::id()))
                .join(format!("store-{}", next_store_id()));
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("spill store: create {}: {e}", dir.display()));
            dir
        })
    }
}

impl<T: SpillRow> PartitionStore<T> {
    /// A store pre-filled from owned partitions (sources, repartition
    /// outputs): sizes are known before any slot fills, so placement uses
    /// the greedy pre-sized plan.
    pub fn prefilled(parts: Vec<Vec<T>>, cfg: StoreConfig) -> Self {
        let store = Self::new(parts.len(), cfg);
        store.fill_batch(parts);
        store
    }

    /// Fill every slot from owned partitions (each slot must be empty).
    fn fill_batch(&self, parts: Vec<Vec<T>>) {
        assert_eq!(parts.len(), self.cells.len(), "one partition per slot");
        let sizes: Vec<u64> = parts.iter().map(|p| p.approx_bytes() as u64).collect();
        // Every partition existed in RAM at fill time; charge the largest.
        self.charge_peak(sizes.iter().copied().max().unwrap_or(0));
        let spill = self.plan_presized(&sizes);
        for (idx, (rows, spill)) in parts.into_iter().zip(spill).enumerate() {
            let slot = if spill {
                self.spill(idx, rows.len(), rows.iter())
            } else {
                Slot::Resident(Arc::new(rows))
            };
            if self.cells[idx].set(slot).is_err() {
                panic!("fill_batch: slot {idx} already filled");
            }
        }
    }

    /// Run `fill` exactly once (across threads) to populate every slot.
    /// The holder's one-shot materialization guard (what used to be an
    /// outer `OnceLock<Vec<…>>`).
    pub fn fill_once(&self, fill: impl FnOnce() -> Vec<Vec<T>>) {
        self.filled.get_or_init(|| self.fill_batch(fill()));
    }

    /// Fill slot `idx` with resident rows (pre-sized holders that planned
    /// placement via [`PartitionStore::plan_presized`]).
    pub fn fill_resident(&self, idx: usize, rows: Arc<Vec<T>>) {
        self.charge_peak(rows.approx_bytes() as u64);
        if self.cells[idx].set(Slot::Resident(rows)).is_err() {
            panic!("fill_resident: slot {idx} already filled");
        }
    }

    /// Fill slot `idx` by streaming `rows` straight to disk — the rows are
    /// never concatenated in RAM (shuffle buckets encode directly from the
    /// per-input buckets).
    pub fn fill_spilled<'a>(
        &self,
        idx: usize,
        row_count: usize,
        rows: impl Iterator<Item = &'a T>,
    ) where
        T: 'a,
    {
        let slot = self.spill(idx, row_count, rows);
        if self.cells[idx].set(slot).is_err() {
            panic!("fill_spilled: slot {idx} already filled");
        }
    }

    /// Serve slot `idx`, computing it on first access (the lazy-holder
    /// path: caches and memoized posts). Placement follows the fair-share
    /// rule; the first fill returns the just-computed rows from RAM even
    /// when the slot spills, so the filling action pays no read-back.
    pub fn get_or_init(&self, idx: usize, compute: impl FnOnce() -> Arc<Vec<T>>) -> Arc<Vec<T>> {
        let mut fresh: Option<Arc<Vec<T>>> = None;
        let slot = self.cells[idx].get_or_init(|| {
            let rows = compute();
            let placed = self.place_lazy(idx, Arc::clone(&rows));
            fresh = Some(rows);
            placed
        });
        match fresh {
            Some(rows) => rows,
            None => self.read_slot(slot),
        }
    }

    /// Read slot `idx` if it has been filled (resident: the shared `Arc`;
    /// spilled: a fresh decode, charged as unspill traffic).
    pub fn load(&self, idx: usize) -> Option<Arc<Vec<T>>> {
        self.cells[idx].get().map(|slot| self.read_slot(slot))
    }

    /// Place a lazily computed partition: resident unless its size times
    /// the partition count exceeds the budget (the fair-share rule).
    fn place_lazy(&self, idx: usize, rows: Arc<Vec<T>>) -> Slot<T> {
        let bytes = rows.approx_bytes() as u64;
        // The computed partition exists in RAM right now either way.
        self.charge_peak(bytes);
        let Some(budget) = self.cfg.budget else {
            return Slot::Resident(rows);
        };
        if bytes.saturating_mul(self.cells.len() as u64) <= budget {
            return Slot::Resident(rows);
        }
        self.spill(idx, rows.len(), rows.iter())
    }

    fn spill<'a>(&self, idx: usize, row_count: usize, rows: impl Iterator<Item = &'a T>) -> Slot<T>
    where
        T: 'a,
    {
        let mut sink = self.open_sink(idx, row_count);
        for row in rows {
            sink.push(row);
        }
        sink.into_slot()
    }

    /// Open an incremental spill writer for slot `idx` (`row_count` rows
    /// must be pushed before [`SpillSink::finish`]). The write-side dual
    /// of [`PartitionStore::stream`]: the streaming shuffle routes rows
    /// into sinks as they are produced, so no spilled bucket is ever
    /// concatenated in RAM.
    pub fn spill_sink(&self, idx: usize, row_count: usize) -> SpillSink<'_, T> {
        self.open_sink(idx, row_count)
    }

    fn open_sink(&self, idx: usize, row_count: usize) -> SpillSink<'_, T> {
        let path = self.dir().join(format!("part-{idx}.bin"));
        let file = File::create(&path)
            .unwrap_or_else(|e| panic!("spill store: create {}: {e}", path.display()));
        let mut buf = Vec::with_capacity(256);
        (row_count as u64).spill_encode(&mut buf);
        SpillSink {
            store: self,
            idx,
            path,
            writer: BufWriter::new(file),
            buf,
            scratch: Vec::new(),
            encoded_bytes: 0,
            expected: row_count,
            pushed: 0,
        }
    }

    /// A cursor over slot `idx`'s rows, if it has been filled.
    ///
    /// Resident slots iterate the shared rows (one clone per row — the
    /// same copies a consumer of [`PartitionStore::load`] would make).
    /// Spilled slots decode row-by-row off a buffered reader when the
    /// store streams, so no intermediate `Vec` of the partition ever
    /// exists; with `StoreConfig::stream` cleared they fall back to a
    /// full rebuild first (the strawman). Unspill traffic is charged in
    /// full either way, so byte counters are mode-invariant.
    pub fn stream(&self, idx: usize) -> Option<RowCursor<T>>
    where
        T: Clone,
    {
        let slot = self.cells[idx].get()?;
        let inner = match slot {
            Slot::Resident(rows) => CursorInner::Resident {
                rows: Arc::clone(rows),
                pos: 0,
            },
            Slot::Spilled {
                path,
                encoded_bytes,
                row_count,
            } => {
                if !self.cfg.stream {
                    let rows = self.read_slot(slot);
                    let owned = Arc::try_unwrap(rows).unwrap_or_else(|arc| (*arc).clone());
                    CursorInner::Owned(owned.into_iter())
                } else {
                    if let Some(stats) = &self.cfg.stats {
                        stats.add_unspill(*encoded_bytes);
                    }
                    let file = File::open(path)
                        .unwrap_or_else(|e| panic!("spill store: open {}: {e}", path.display()));
                    let mut reader = BufReader::with_capacity(64 * 1024, file);
                    let mut header = [0u8; 8];
                    reader.read_exact(&mut header).expect("spill header read");
                    debug_assert_eq!(
                        u64::from_le_bytes(header) as usize,
                        *row_count,
                        "spill header row count"
                    );
                    CursorInner::Spilled {
                        reader,
                        remaining: *row_count,
                        scratch: Vec::new(),
                        stats: self.cfg.stats.clone(),
                    }
                }
            }
        };
        Some(RowCursor { inner })
    }

    fn read_slot(&self, slot: &Slot<T>) -> Arc<Vec<T>> {
        match slot {
            Slot::Resident(rows) => Arc::clone(rows),
            Slot::Spilled {
                path,
                encoded_bytes,
                row_count,
            } => {
                let data = std::fs::read(path)
                    .unwrap_or_else(|e| panic!("spill store: read {}: {e}", path.display()));
                let mut reader = SpillReader::new(&data);
                let count = u64::spill_decode(&mut reader) as usize;
                debug_assert_eq!(count, *row_count, "spill header row count");
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = u32::from_le_bytes(reader.read_array()) as usize;
                    let before = reader.remaining();
                    rows.push(T::spill_decode(&mut reader));
                    debug_assert_eq!(before - reader.remaining(), len, "row length prefix");
                }
                debug_assert_eq!(reader.remaining(), 0, "spill file fully consumed");
                if let Some(stats) = &self.cfg.stats {
                    stats.add_unspill(*encoded_bytes);
                }
                // The whole partition was just rebuilt in RAM.
                self.charge_peak(rows.approx_bytes() as u64);
                Arc::new(rows)
            }
        }
    }
}

// ---------- the incremental spill writer ----------

/// Write-side streaming: rows pushed one at a time are length-prefixed,
/// encoded, and flushed to the slot's spill file in 64 KiB chunks. Created
/// by [`PartitionStore::spill_sink`]; [`SpillSink::finish`] seals the file
/// and fills the slot.
pub struct SpillSink<'s, T: SpillRow> {
    store: &'s PartitionStore<T>,
    idx: usize,
    path: PathBuf,
    writer: BufWriter<File>,
    buf: Vec<u8>,
    scratch: Vec<u8>,
    encoded_bytes: u64,
    expected: usize,
    pushed: usize,
}

impl<T: SpillRow> SpillSink<'_, T> {
    /// Encode one row to the file. Only this row is resident, and only
    /// this row is charged against the peak meter.
    pub fn push(&mut self, row: &T) {
        self.scratch.clear();
        row.spill_encode(&mut self.scratch);
        let len = u32::try_from(self.scratch.len()).expect("spill row under 4 GiB");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&self.scratch);
        self.store.charge_peak(row.approx_bytes() as u64);
        self.pushed += 1;
        if self.buf.len() >= 64 * 1024 {
            self.writer.write_all(&self.buf).expect("spill write");
            self.encoded_bytes += self.buf.len() as u64;
            self.buf.clear();
        }
    }

    /// Seal the file and fill the slot (panics if the slot was filled
    /// concurrently or the pushed row count disagrees with the header).
    pub fn finish(self) {
        let store = self.store;
        let idx = self.idx;
        let slot = self.into_slot();
        if store.cells[idx].set(slot).is_err() {
            panic!("spill sink: slot {idx} already filled");
        }
    }

    fn into_slot(mut self) -> Slot<T> {
        assert_eq!(
            self.pushed, self.expected,
            "spill sink: header promised {} rows, got {}",
            self.expected, self.pushed
        );
        self.writer.write_all(&self.buf).expect("spill write");
        self.encoded_bytes += self.buf.len() as u64;
        self.writer.flush().expect("spill flush");
        if let Some(stats) = &self.store.cfg.stats {
            stats.add_spill(self.encoded_bytes);
        }
        self.store.spilled_parts.fetch_add(1, Ordering::Relaxed);
        self.store
            .spilled_bytes
            .fetch_add(self.encoded_bytes, Ordering::Relaxed);
        Slot::Spilled {
            path: self.path,
            encoded_bytes: self.encoded_bytes,
            row_count: self.pushed,
        }
    }
}

// ---------- the streaming cursor ----------

/// An iterator of decoded rows over one filled partition slot, from
/// [`PartitionStore::stream`]. Owns everything it needs (shared `Arc` or
/// an open file handle), so it outlives no borrow of the store.
pub struct RowCursor<T: SpillRow> {
    inner: CursorInner<T>,
}

enum CursorInner<T: SpillRow> {
    /// Shared resident rows, cloned out one at a time.
    Resident { rows: Arc<Vec<T>>, pos: usize },
    /// A full rebuild (strawman mode), drained by move.
    Owned(std::vec::IntoIter<T>),
    /// Chunked decode straight off the spill file.
    Spilled {
        reader: BufReader<File>,
        remaining: usize,
        scratch: Vec<u8>,
        stats: Option<Arc<CommStats>>,
    },
}

impl<T: SpillRow + Clone> Iterator for RowCursor<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            CursorInner::Resident { rows, pos } => {
                let row = rows.get(*pos)?.clone();
                *pos += 1;
                Some(row)
            }
            CursorInner::Owned(iter) => iter.next(),
            CursorInner::Spilled {
                reader,
                remaining,
                scratch,
                stats,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let mut prefix = [0u8; 4];
                reader.read_exact(&mut prefix).expect("spill row prefix");
                let len = u32::from_le_bytes(prefix) as usize;
                scratch.resize(len, 0);
                reader.read_exact(scratch).expect("spill row read");
                let mut r = SpillReader::new(scratch);
                let row = T::spill_decode(&mut r);
                debug_assert_eq!(r.remaining(), 0, "spill row fully consumed");
                if let Some(stats) = stats {
                    // Only this one decoded row is resident.
                    stats.charge_resident(row.approx_bytes() as u64);
                }
                Some(row)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            CursorInner::Resident { rows, pos } => {
                let left = rows.len() - pos;
                (left, Some(left))
            }
            CursorInner::Owned(iter) => iter.size_hint(),
            CursorInner::Spilled { remaining, .. } => (*remaining, Some(*remaining)),
        }
    }
}

impl<T> Drop for PartitionStore<T> {
    fn drop(&mut self) {
        if let Some(dir) = self.dir.get() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl<T> std::fmt::Debug for PartitionStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionStore")
            .field("partitions", &self.cells.len())
            .field("budget", &self.cfg.budget)
            .field("spilled_parts", &self.spilled_parts())
            .field("spilled_bytes", &self.spilled_bytes())
            .finish()
    }
}

// ---------- residency (for plan rendering) ----------

/// A budgeted store's mem-vs-spill picture, rendered by `explain_plans()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Everything fits: nothing spilled, nothing predicted to.
    Mem {
        /// The resident byte budget the store stayed within.
        budget: u64,
    },
    /// Some partitions live (or are predicted to live) on disk and are
    /// rebuilt as whole `Vec`s on access (`StoreConfig::stream` cleared).
    Spill {
        /// The resident byte budget in force.
        budget: u64,
        /// Partitions spilled so far.
        spilled_parts: usize,
        /// Encoded bytes spilled so far.
        spilled_bytes: u64,
        /// Estimated bytes that *will* spill where nothing has run yet
        /// (0 once real spills exist or the estimate fits the budget).
        predicted_bytes: u64,
    },
    /// Some partitions live (or are predicted to live) on disk and are
    /// consumed row-by-row through the streaming cursor, so peak resident
    /// memory stays bounded during consumption.
    Stream {
        /// The resident byte budget in force.
        budget: u64,
        /// Partitions spilled so far.
        spilled_parts: usize,
        /// Encoded bytes spilled so far.
        spilled_bytes: u64,
        /// Estimated bytes that *will* spill where nothing has run yet
        /// (0 once real spills exist or the estimate fits the budget).
        predicted_bytes: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_cfg() -> StoreConfig {
        StoreConfig::default()
    }

    /// Budgeted, rebuild-on-access (the strawman mode).
    fn spill_cfg(budget: u64) -> StoreConfig {
        StoreConfig {
            budget: Some(budget),
            stats: None,
            stream: false,
        }
    }

    /// Budgeted, streaming cursors (the default mode).
    fn stream_cfg(budget: u64) -> StoreConfig {
        StoreConfig {
            budget: Some(budget),
            ..StoreConfig::default()
        }
    }

    #[test]
    fn roundtrip_assorted_row_types() {
        fn roundtrip<T: SpillRow + PartialEq + std::fmt::Debug>(rows: Vec<T>) {
            let mut buf = Vec::new();
            for row in &rows {
                row.spill_encode(&mut buf);
            }
            let mut reader = SpillReader::new(&buf);
            let decoded: Vec<T> = (0..rows.len()).map(|_| T::spill_decode(&mut reader)).collect();
            assert_eq!(decoded, rows);
            assert_eq!(reader.remaining(), 0);
        }
        roundtrip(vec![0u64, 1, u64::MAX]);
        roundtrip(vec![-3i64, 0, i64::MAX]);
        roundtrip(vec![1.5f64, -0.0, f64::INFINITY]);
        roundtrip(vec![String::from("héllo"), String::new()]);
        roundtrip(vec![("k".to_string(), 7u64), ("".to_string(), 0)]);
        roundtrip(vec![Some(3u32), None, Some(0)]);
        roundtrip(vec![vec![1u8, 2, 3], vec![]]);
        roundtrip(vec![[1u64, 2], [3, 4]]);
        roundtrip(vec![(1u32, (2u64, true), 'λ')]);
        roundtrip(vec!["static", ""]);
        roundtrip(vec![(3usize, -4isize)]);
    }

    #[test]
    fn float_bits_survive_exactly() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = Vec::new();
        nan.spill_encode(&mut buf);
        let decoded = f64::spill_decode(&mut SpillReader::new(&buf));
        assert_eq!(decoded.to_bits(), nan.to_bits());
    }

    #[test]
    fn mem_store_shares_one_arc_and_touches_no_disk() {
        let store: PartitionStore<u64> = PartitionStore::new(2, mem_cfg());
        let first = store.get_or_init(0, || Arc::new(vec![1, 2, 3]));
        let second = store.get_or_init(0, || unreachable!("filled once"));
        assert!(Arc::ptr_eq(&first, &second), "mem mode hands out the same Arc");
        assert!(store.spill_dir().is_none(), "no budget, no directory");
        assert_eq!(store.part_len(0), Some(3));
        assert!(!store.is_filled(1));
    }

    #[test]
    fn fair_share_spills_only_oversized_partitions() {
        // 4 slots, 64-byte budget → fair share 16 bytes. A 2-row u64
        // partition (16 B) stays; a 3-row one (24 B) spills.
        let store: PartitionStore<u64> = PartitionStore::new(4, spill_cfg(64));
        let small = store.get_or_init(0, || Arc::new(vec![1, 2]));
        assert_eq!(store.spilled_parts(), 0);
        let big = store.get_or_init(1, || Arc::new(vec![3, 4, 5]));
        assert_eq!(store.spilled_parts(), 1, "over fair share → disk");
        assert_eq!(*big, vec![3, 4, 5], "first fill reads back from RAM");
        // Later loads decode the file into a fresh allocation.
        let replay = store.load(1).unwrap();
        assert_eq!(*replay, vec![3, 4, 5]);
        assert!(!Arc::ptr_eq(&big, &replay), "spilled reads are fresh decodes");
        // The resident partition still shares its Arc.
        assert!(Arc::ptr_eq(&small, &store.load(0).unwrap()));
    }

    #[test]
    fn presized_plan_is_greedy_first_fit() {
        let store: PartitionStore<u64> = PartitionStore::new(4, spill_cfg(40));
        // 16 + 16 fits; 16 more would overflow; the final 8 still fits.
        assert_eq!(
            store.plan_presized(&[16, 16, 16, 8]),
            vec![false, false, true, false]
        );
        let unbudgeted: PartitionStore<u64> = PartitionStore::new(4, mem_cfg());
        assert_eq!(
            unbudgeted.plan_presized(&[u64::MAX, 1, 2, 3]),
            vec![false; 4]
        );
    }

    #[test]
    fn prefilled_store_roundtrips_spilled_parts() {
        let parts: Vec<Vec<u64>> = (0..4).map(|p| (0..8).map(|i| p * 100 + i).collect()).collect();
        let store = PartitionStore::prefilled(parts.clone(), spill_cfg(100));
        // 64 B per part: part 0 fits, part 1 fits (128 > 100 → no, 64+64=128 > 100), …
        assert_eq!(store.spilled_parts(), 3, "one resident, three spilled");
        for (p, expected) in parts.iter().enumerate() {
            assert_eq!(*store.load(p).unwrap(), *expected, "partition {p}");
        }
    }

    #[test]
    fn spill_counters_feed_comm_stats() {
        let stats = CommStats::new();
        let cfg = StoreConfig {
            budget: Some(8),
            stats: Some(Arc::clone(&stats)),
            ..StoreConfig::default()
        };
        let store: PartitionStore<u64> = PartitionStore::new(1, cfg);
        store.get_or_init(0, || Arc::new(vec![7, 8, 9]));
        assert_eq!(stats.spills(), 1);
        // Header (8 B row count) + 3 × (4 B length prefix + 8 B row).
        assert_eq!(stats.spill_bytes(), 44);
        assert_eq!(stats.unspill_bytes(), 0, "first fill served from RAM");
        store.load(0);
        store.load(0);
        assert_eq!(stats.unspill_bytes(), 88, "every later read is a decode");
        assert_eq!(stats.spills(), 1, "written once");
    }

    #[test]
    fn drop_removes_spill_directory() {
        let dir;
        {
            let store: PartitionStore<u64> = PartitionStore::new(1, spill_cfg(0));
            store.get_or_init(0, || Arc::new(vec![1, 2, 3]));
            dir = store.spill_dir().expect("spilled").to_path_buf();
            assert!(dir.exists(), "spill file on disk while the store lives");
        }
        assert!(!dir.exists(), "drop cleans the store's directory");
    }

    #[test]
    fn residency_reports_mem_and_spill() {
        let store: PartitionStore<u64> = PartitionStore::new(2, mem_cfg());
        assert_eq!(store.residency(Some(10)), None, "no budget → no residency");

        let store: PartitionStore<u64> = PartitionStore::new(2, spill_cfg(64));
        assert_eq!(store.residency(Some(10)), Some(Residency::Mem { budget: 64 }));
        assert_eq!(
            store.residency(Some(100)),
            Some(Residency::Spill {
                budget: 64,
                spilled_parts: 0,
                spilled_bytes: 0,
                predicted_bytes: 100,
            })
        );
        store.get_or_init(0, || Arc::new(vec![1u64; 32]));
        let Some(Residency::Spill { spilled_parts, spilled_bytes, .. }) =
            store.residency(None)
        else {
            panic!("spilled store must report Spill");
        };
        assert_eq!(spilled_parts, 1);
        assert_eq!(spilled_bytes, 8 + 32 * (4 + 8));
    }

    #[test]
    fn residency_distinguishes_stream_from_rebuild() {
        let store: PartitionStore<u64> = PartitionStore::new(1, stream_cfg(8));
        store.get_or_init(0, || Arc::new(vec![1, 2, 3]));
        assert!(
            matches!(store.residency(None), Some(Residency::Stream { spilled_parts: 1, .. })),
            "a streaming store reports Stream residency"
        );
        let store: PartitionStore<u64> = PartitionStore::new(1, spill_cfg(8));
        store.get_or_init(0, || Arc::new(vec![1, 2, 3]));
        assert!(
            matches!(store.residency(None), Some(Residency::Spill { spilled_parts: 1, .. })),
            "a rebuild-on-access store reports Spill residency"
        );
    }

    #[test]
    fn cursor_matches_load_in_every_mode() {
        let rows: Vec<u64> = (0..500).map(|i| i * 3).collect();
        for cfg in [mem_cfg(), spill_cfg(8), stream_cfg(8)] {
            let store = PartitionStore::prefilled(vec![rows.clone()], cfg);
            let streamed: Vec<u64> = store.stream(0).expect("filled").collect();
            assert_eq!(streamed, *store.load(0).unwrap());
            assert_eq!(streamed, rows);
        }
        let empty: PartitionStore<u64> = PartitionStore::new(1, mem_cfg());
        assert!(empty.stream(0).is_none(), "unfilled slot has no cursor");
    }

    #[test]
    fn cursor_charges_unspill_like_a_full_read() {
        // Byte counters must not depend on the consumption mode, only the
        // peak meter does.
        let rows: Vec<u64> = (0..64).collect();
        let mut unspills = Vec::new();
        for stream in [false, true] {
            let stats = CommStats::new();
            let cfg = StoreConfig {
                budget: Some(8),
                stats: Some(Arc::clone(&stats)),
                stream,
            };
            let store = PartitionStore::prefilled(vec![rows.clone()], cfg);
            let _: Vec<u64> = store.stream(0).unwrap().collect();
            unspills.push(stats.unspill_bytes());
        }
        assert_eq!(unspills[0], unspills[1], "unspill bytes are mode-invariant");
        assert!(unspills[0] > 0);
    }

    #[test]
    fn streaming_cursor_keeps_peak_below_full_rebuild() {
        let rows: Vec<u64> = (0..4096).collect();
        let peak_of = |stream: bool| {
            let stats = CommStats::new();
            let cfg = StoreConfig {
                budget: Some(8),
                stats: Some(Arc::clone(&stats)),
                stream,
            };
            let store: PartitionStore<u64> = PartitionStore::new(1, cfg);
            // Fill through the sink so the strawman's fill-side charge is
            // identical and only the read side differs.
            let mut sink = store.spill_sink(0, rows.len());
            for row in &rows {
                sink.push(row);
            }
            sink.finish();
            let drained: Vec<u64> = store.stream(0).unwrap().collect();
            assert_eq!(drained, rows);
            stats.peak_resident_bytes()
        };
        let streamed = peak_of(true);
        let rebuilt = peak_of(false);
        assert_eq!(streamed, 8, "streaming holds one 8-byte row at a time");
        assert_eq!(rebuilt, 4096 * 8, "the strawman rebuilds the whole Vec");
    }

    #[test]
    fn spill_sink_and_fill_spilled_write_identical_slots() {
        let rows: Vec<(u64, String)> = (0..100).map(|i| (i, format!("row-{i}"))).collect();
        let via_sink: PartitionStore<(u64, String)> = PartitionStore::new(1, stream_cfg(8));
        let mut sink = via_sink.spill_sink(0, rows.len());
        for row in &rows {
            sink.push(row);
        }
        sink.finish();
        let via_fill: PartitionStore<(u64, String)> = PartitionStore::new(1, stream_cfg(8));
        via_fill.fill_spilled(0, rows.len(), rows.iter());
        assert_eq!(via_sink.spilled_bytes(), via_fill.spilled_bytes());
        assert_eq!(*via_sink.load(0).unwrap(), *via_fill.load(0).unwrap());
        assert_eq!(*via_sink.load(0).unwrap(), rows);
    }

    #[test]
    fn fill_once_runs_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let store: PartitionStore<u64> = PartitionStore::new(2, mem_cfg());
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            store.fill_once(|| {
                calls.fetch_add(1, Ordering::Relaxed);
                vec![vec![1], vec![2, 3]]
            });
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(*store.load(1).unwrap(), vec![2, 3]);
    }
}
