//! Encode→decode identity for every implemented [`SpillRow`] type.
//!
//! The spill encoding is the engine's on-disk row format: if any type
//! drifts (endianness, prefix width, tag values), spilled partitions
//! silently corrupt. This suite pins `decode(encode(x)) == x` for the
//! whole implemented surface — fixed ints, pointer-width ints, floats by
//! bit pattern (NaN payloads and signed zeros included), `bool`, `char`,
//! `()`, strings, `Option`, `Vec`, arrays, tuples, `Either`, and nested
//! compositions — plus the `&'static str` intern-cache regression: a
//! thousand decodes of the same partition may leak each distinct string at
//! most once.

use peachy_dataflow::keyed::Either;
use peachy_dataflow::{PartitionStore, SpillReader, SpillRow, StoreConfig};

/// Encode a slice row-by-row into one buffer, decode it back, and require
/// exact equality plus full consumption (no trailing or missing bytes).
fn roundtrip<T: SpillRow + PartialEq + std::fmt::Debug>(rows: &[T]) {
    let mut buf = Vec::new();
    for row in rows {
        row.spill_encode(&mut buf);
    }
    let mut reader = SpillReader::new(&buf);
    for row in rows {
        assert_eq!(&T::spill_decode(&mut reader), row);
    }
    assert_eq!(reader.remaining(), 0, "encoding left trailing bytes");
}

#[test]
fn fixed_width_ints_roundtrip() {
    roundtrip(&[u8::MIN, 1, 0x7F, u8::MAX]);
    roundtrip(&[u16::MIN, 1, 0xBEEF, u16::MAX]);
    roundtrip(&[u32::MIN, 1, 0xDEAD_BEEF, u32::MAX]);
    roundtrip(&[u64::MIN, 1, 0x0123_4567_89AB_CDEF, u64::MAX]);
    roundtrip(&[u128::MIN, 1, u64::MAX as u128 + 1, u128::MAX]);
    roundtrip(&[i8::MIN, -1, 0, i8::MAX]);
    roundtrip(&[i16::MIN, -1, 0, i16::MAX]);
    roundtrip(&[i32::MIN, -1, 0, i32::MAX]);
    roundtrip(&[i64::MIN, -1, 0, i64::MAX]);
    roundtrip(&[i128::MIN, -1, 0, i128::MAX]);
}

#[test]
fn pointer_width_ints_roundtrip() {
    roundtrip(&[usize::MIN, 1, usize::MAX]);
    roundtrip(&[isize::MIN, -1, 0, isize::MAX]);
}

#[test]
fn floats_roundtrip_by_bit_pattern() {
    // PartialEq can't see the cases that matter (NaN != NaN, -0.0 == 0.0),
    // so compare bits directly.
    let f32s = [
        0.0f32,
        -0.0,
        1.5,
        f32::MIN_POSITIVE,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::from_bits(0x7FC0_1234), // NaN with a payload
    ];
    let mut buf = Vec::new();
    for v in &f32s {
        v.spill_encode(&mut buf);
    }
    let mut reader = SpillReader::new(&buf);
    for v in &f32s {
        assert_eq!(f32::spill_decode(&mut reader).to_bits(), v.to_bits());
    }

    let f64s = [
        0.0f64,
        -0.0,
        std::f64::consts::PI,
        f64::MIN_POSITIVE,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::from_bits(0x7FF8_0000_0000_BEEF), // NaN with a payload
    ];
    let mut buf = Vec::new();
    for v in &f64s {
        v.spill_encode(&mut buf);
    }
    let mut reader = SpillReader::new(&buf);
    for v in &f64s {
        assert_eq!(f64::spill_decode(&mut reader).to_bits(), v.to_bits());
    }
}

#[test]
fn scalars_and_strings_roundtrip() {
    roundtrip(&[true, false]);
    roundtrip(&['a', 'ß', '中', '🦀', '\0']);
    roundtrip(&[(), (), ()]);
    roundtrip(&[
        String::new(),
        "ascii".to_string(),
        "ünïcödé 中文 🦀".to_string(),
        "x".repeat(10_000),
    ]);
    roundtrip(&["", "static", "with spaces and 中文"]);
}

#[test]
fn compound_types_roundtrip() {
    roundtrip(&[None, Some(42u64), None, Some(u64::MAX)]);
    roundtrip(&[vec![1u32, 2, 3], vec![], vec![u32::MAX; 17]]);
    roundtrip(&[[1u16, 2, 3], [u16::MAX, 0, 7]]);
    roundtrip(&[(1u8,), (u8::MAX,)]);
    roundtrip(&[(1u64, "pair".to_string()), (2, String::new())]);
    roundtrip(&[(1u8, 2u16, 3u32), (u8::MAX, u16::MAX, u32::MAX)]);
    roundtrip(&[(1u8, 2u16, 3u32, 4u64)]);
    roundtrip(&[(1u8, 2u16, 3u32, 4u64, 5i8)]);
    roundtrip(&[(1u8, 2u16, 3u32, 4u64, 5i8, true)]);
    roundtrip(&[
        Either::<u64, String>::Left(7),
        Either::Right("right".to_string()),
    ]);
}

#[test]
fn nested_composition_roundtrips() {
    // The deepest shape the engine's combinators produce: optional vectors
    // of mixed-representation pairs, plus empty vessels at every level.
    let rows: Vec<Option<Vec<(f64, String)>>> = vec![
        None,
        Some(vec![]),
        Some(vec![(1.25, "one and a quarter".to_string())]),
        Some(vec![
            (0.0, String::new()),
            (-0.0, "signed zero".to_string()),
            (f64::MAX, "big".to_string()),
        ]),
    ];
    roundtrip(&rows);

    // And the same shape through an actual spilled store: file format
    // (row-count header + per-row length prefixes) included.
    let store = PartitionStore::prefilled(
        vec![rows.clone(), vec![None; 3]],
        StoreConfig {
            budget: Some(1),
            ..StoreConfig::default()
        },
    );
    assert!(store.spilled_parts() > 0, "a 1 B budget must spill");
    assert_eq!(*store.load(0).unwrap(), rows);
    assert_eq!(*store.load(1).unwrap(), vec![None; 3]);
}

#[test]
fn empty_rows_and_empty_partitions_roundtrip() {
    // `()` encodes to zero bytes: a spilled partition of 1000 unit rows is
    // just the header, and must still come back as 1000 rows.
    let store = PartitionStore::prefilled(
        vec![vec![(); 1000]],
        StoreConfig {
            budget: Some(1),
            ..StoreConfig::default()
        },
    );
    assert_eq!(store.load(0).unwrap().len(), 1000);
    let empty: Vec<Vec<u64>> = vec![vec![]];
    let store = PartitionStore::prefilled(
        empty,
        StoreConfig {
            budget: Some(1),
            ..StoreConfig::default()
        },
    );
    assert_eq!(store.load(0).unwrap().len(), 0);
}

/// Regression for the `&'static str` decode leak: every decode used to
/// `Box::leak` a fresh copy, so replaying a spilled partition grew memory
/// without bound. The process-wide intern cache must hand back the *same*
/// pointer for the same bytes, every time.
#[test]
fn static_str_decodes_intern_to_the_same_pointers() {
    let rows: Vec<&'static str> = vec!["alpha", "beta", "gamma", "alpha", "beta"];
    let mut buf = Vec::new();
    for row in &rows {
        row.spill_encode(&mut buf);
    }
    let decode_all = || -> Vec<&'static str> {
        let mut reader = SpillReader::new(&buf);
        (0..rows.len())
            .map(|_| <&'static str>::spill_decode(&mut reader))
            .collect()
    };
    let first = decode_all();
    for (got, want) in first.iter().zip(&rows) {
        assert_eq!(got, want);
    }
    // Duplicate strings within one partition share an interned entry...
    assert!(std::ptr::eq(first[0], first[3]), "duplicate rows must intern");
    assert!(std::ptr::eq(first[1], first[4]));
    // ...and 1000 replays of the whole partition mint nothing new.
    for _ in 0..1000 {
        let again = decode_all();
        for (a, b) in again.iter().zip(&first) {
            assert!(
                std::ptr::eq(*a, *b),
                "replayed decode must return the interned pointer"
            );
        }
    }
}
