//! Out-of-core laws: spilling must be invisible everywhere but the disk.
//!
//! The storage seam's hard contract: running the same job under any
//! [`OptimizerConfig::spill_budget`] — unlimited, tight, or a pathological
//! 1 KiB that spills nearly everything — must produce bit-identical rows
//! and identical non-spill [`ShuffleStats`] counters, on every executor
//! and under benign transport chaos. The spill decision itself is a pure
//! function of (data, budget, config): the fair-share rule reads only a
//! partition's own size, and the pre-sized shuffle plan is greedy in
//! bucket-index order, so no rayon schedule can change what hits disk.
//!
//! The seed grid mirrors the E18 optimizer-equivalence suite; CI rolls a
//! fresh grid per run via `PEACHY_CHAOS_SEED` while logging it for replay.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use peachy_cluster::{EdgeFault, Executor, FaultPlan};
use peachy_dataflow::{
    Dataset, OptimizerConfig, PartitionStore, RetryPolicy, ShuffleStats, StoreConfig,
};
use peachy_prng::{Lcg64, RandomStream};

fn base_seed() -> u64 {
    std::env::var("PEACHY_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE_5EED)
}

/// The budget grid every law runs over: unlimited, tight enough to spill
/// the bigger holders, and a pathological floor that spills nearly every
/// partition of every holder.
const BUDGETS: [Option<u64>; 3] = [None, Some(64 * 1024), Some(1024)];

fn cfg_with(budget: Option<u64>) -> OptimizerConfig {
    OptimizerConfig {
        spill_budget: budget,
        ..OptimizerConfig::default()
    }
}

/// One random pipeline under an explicit budget, with a fresh counter
/// block attached to *every* layer (source store, narrow auto-caches,
/// shuffles). Same generator as the E18 equivalence suite, so the grid
/// covers caches, repartitions, retries, unions, and chained wide ops.
fn build(seed: u64, cfg: OptimizerConfig) -> (Dataset<(u64, u64)>, bool, Arc<ShuffleStats>) {
    let stats = ShuffleStats::new();
    let mut rng = Lcg64::seed_from(seed);
    let rows = 50 + (rng.next_u64() % 350) as usize;
    let parts = 1 + (rng.next_u64() % 7) as usize;
    let source: Vec<u64> = (0..rows as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24)
        .collect();
    let mut ds = Dataset::from_vec_with(source, parts, cfg).with_stats(Arc::clone(&stats));

    let narrow_ops = rng.next_u64() % 6;
    for _ in 0..narrow_ops {
        ds = match rng.next_u64() % 7 {
            0 => ds.map(|x| x.wrapping_mul(3).wrapping_add(1)),
            1 => {
                let m = 2 + rng.next_u64() % 5;
                ds.filter(move |x| x % m != 0)
            }
            2 => ds.flat_map(|x| {
                if x % 2 == 0 {
                    vec![x, x / 2]
                } else {
                    vec![x]
                }
            }),
            3 => ds.union_with(&ds.map(|x| x ^ 0xFF)),
            4 => ds.cache(),
            5 => {
                let p = 1 + (rng.next_u64() % 7) as usize;
                ds.repartition(p)
            }
            _ => ds.with_retry(RetryPolicy::default()),
        };
    }

    if rng.next_u64() % 4 == 0 {
        return (ds.map(|x| (x, x)), false, stats);
    }

    let modulus = 2 + rng.next_u64() % 9;
    let mut keyed = ds
        .key_by(move |x| x % modulus)
        .with_stats(Arc::clone(&stats));
    let wide_ops = 1 + rng.next_u64() % 3;
    for _ in 0..wide_ops {
        keyed = match rng.next_u64() % 5 {
            0 => keyed.count_by_key(),
            1 => keyed.reduce_by_key(|a, b| a.wrapping_add(b)),
            2 => keyed.reduce_by_key(|a, b| a.min(b)).map_values(|v| v.rotate_left(7)),
            3 => keyed.group_by_key().map_values(|vs| vs.len() as u64),
            _ => {
                let other = keyed.count_by_key();
                keyed
                    .reduce_by_key(|a, b| a.wrapping_add(b))
                    .join(&other)
                    .map_values(|(v, w)| v ^ w)
            }
        };
    }
    (keyed.rows(), true, stats)
}

fn canon(mut rows: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    rows.sort_unstable();
    rows
}

/// The counters a budget must NOT move: everything except the spill
/// traffic itself.
fn non_spill_counters(stats: &ShuffleStats) -> (u64, u64, u64, u64) {
    (
        stats.records(),
        stats.bytes(),
        stats.shuffles(),
        stats.shuffles_elided(),
    )
}

#[test]
fn results_are_bit_identical_across_budgets() {
    let base = base_seed();
    println!("spill-laws grid base seed: {base:#x}");
    for i in 0..16 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let (ref_ds, wide, ref_stats) = build(seed, cfg_with(None));
        let reference = ref_ds.collect();
        assert_eq!(
            ref_stats.spills(),
            0,
            "seed {seed}: an unlimited budget must never touch disk"
        );
        for budget in [BUDGETS[1], BUDGETS[2]] {
            let (ds, w, stats) = build(seed, cfg_with(budget));
            assert_eq!(w, wide, "builder must be deterministic in seed");
            let got = ds.collect();
            if wide {
                assert_eq!(
                    canon(got),
                    canon(reference.clone()),
                    "seed {seed} at budget {budget:?}: multiset diverged"
                );
            } else {
                assert_eq!(
                    got, reference,
                    "seed {seed} at budget {budget:?}: rows or order diverged"
                );
            }
            assert_eq!(
                non_spill_counters(&stats),
                non_spill_counters(&ref_stats),
                "seed {seed} at budget {budget:?}: spilling leaked into the shuffle ledger"
            );
        }
    }
}

#[test]
fn budgets_hold_on_every_executor() {
    let base = base_seed() ^ 0xBAC0;
    for i in 0..4 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let (ref_ds, wide, _) = build(seed, cfg_with(None));
        let reference = canon(ref_ds.collect());
        for exec in [Executor::seq(), Executor::rayon(3), Executor::cluster(4)] {
            for budget in BUDGETS {
                let (ds, _, _) = build(seed, cfg_with(budget));
                let got = ds.collect_with(&exec);
                if wide {
                    assert_eq!(canon(got), reference, "seed {seed} at {budget:?} on {exec:?}");
                } else {
                    assert_eq!(
                        got,
                        ref_ds.collect(),
                        "seed {seed} at {budget:?} on {exec:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn budgets_hold_under_benign_chaos() {
    let base = base_seed() ^ 0x000C_4A05;
    for i in 0..4 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let plan = FaultPlan::new(seed).all_edges(EdgeFault {
            drop_p: 0.0,
            dup_p: 0.2,
            reorder_p: 0.3,
            delay: Duration::from_micros(50),
        });
        let chaotic = Executor::Cluster { ranks: 4, plan };
        let (ref_ds, wide, _) = build(seed, cfg_with(None));
        let reference = canon(ref_ds.collect());
        for budget in [BUDGETS[1], BUDGETS[2]] {
            let (ds, _, _) = build(seed, cfg_with(budget));
            let got = ds.collect_with(&chaotic);
            if wide {
                assert_eq!(canon(got), reference, "seed {seed} at {budget:?} under chaos");
            } else {
                assert_eq!(got, ref_ds.collect(), "seed {seed} at {budget:?} under chaos");
            }
        }
    }
}

/// Same job, same budget, twice: the spill/unspill counter trace must be
/// identical — spill order is a pure function of (data, budget, config),
/// never of scheduling.
#[test]
fn spill_trace_is_deterministic() {
    let base = base_seed() ^ 0x00DE_7E12;
    for i in 0..8 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let trace = |budget: Option<u64>| {
            let (ds, _, stats) = build(seed, cfg_with(budget));
            ds.collect();
            ds.count();
            (stats.spills(), stats.spill_bytes(), stats.unspill_bytes())
        };
        for budget in [BUDGETS[1], BUDGETS[2]] {
            assert_eq!(
                trace(budget),
                trace(budget),
                "seed {seed} at {budget:?}: spill trace must be schedule-free"
            );
        }
    }
}

/// An over-budget wordcount demonstrably spills, and every temp file is
/// gone once the lineage is dropped.
#[test]
fn over_budget_job_spills_and_cleans_up() {
    let spill_root = std::env::temp_dir().join(format!("peachy-spill-{}", std::process::id()));
    let dirs = |root: &std::path::Path| -> std::collections::HashSet<std::ffi::OsString> {
        std::fs::read_dir(root)
            .map(|d| d.flatten().map(|e| e.file_name()).collect())
            .unwrap_or_default()
    };
    let before = dirs(&spill_root);

    let lines: Vec<String> = (0..2_000)
        .map(|i| format!("word{} word{} common", i % 50, i % 13))
        .collect();
    let (stats, during) = {
        let stats = ShuffleStats::new();
        let counts = Dataset::from_vec_with(lines, 8, cfg_with(Some(1024)))
            .with_stats(Arc::clone(&stats))
            .flat_map(|line| {
                line.split_whitespace()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .key_by(|w| w.clone())
            .with_stats(Arc::clone(&stats))
            .map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b);
        let table = counts.collect();
        // word0..word49 (the %13 words are a subset) plus "common".
        assert_eq!(table.len(), 51);
        assert_eq!(
            table.iter().map(|(_, n)| n).sum::<u64>(),
            3 * 2_000,
            "every word counted exactly once regardless of where it lived"
        );
        assert!(
            stats.spills() > 0,
            "a 1 KiB budget over ~100 KiB of text must spill"
        );
        assert!(stats.spill_bytes() > 0);
        assert!(
            stats.unspill_bytes() > 0,
            "spilled buckets must have been streamed back"
        );
        let during: Vec<_> = dirs(&spill_root).difference(&before).cloned().collect();
        assert!(!during.is_empty(), "spilling must create store directories");
        (stats, during)
    };
    // The lineage (and with it every PartitionStore) is dropped: every
    // store directory that appeared during the job must disappear. Other
    // tests of this binary share the per-process root and may race their
    // own short-lived directories into `during`, so poll briefly.
    let gone = |during: &[std::ffi::OsString]| {
        let now = dirs(&spill_root);
        during.iter().all(|d| !now.contains(d))
    };
    for _ in 0..100 {
        if gone(&during) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        gone(&during),
        "dropped stores must remove their spill directories"
    );
    assert!(stats.spill_bytes() >= stats.spills());
}

/// The cost model is spill-aware: an auto-cache whose contents would blow
/// the whole budget wholly spills under the fair-share rule, so replaying
/// it is no cheaper than recomputing — the optimizer must not arm it.
/// With `charge_spill_reads` off, the old byte-threshold behaviour is
/// restored. Either way the rows are identical.
#[test]
fn oversized_auto_cache_is_not_armed() {
    let run = |cfg: OptimizerConfig| {
        let calls = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&calls);
        let ds = Dataset::from_vec_with((0..10_000u64).collect::<Vec<_>>(), 4, cfg).map(move |x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x.wrapping_mul(7)
        });
        let total = ds.reduce(|a, b| a.wrapping_add(b));
        assert_eq!(ds.count(), 10_000);
        assert_eq!(ds.collect().len(), 10_000);
        assert!(total.is_some());
        calls.load(Ordering::SeqCst)
    };
    assert_eq!(
        run(cfg_with(None)),
        20_000,
        "unlimited budget: the shared subtree auto-caches as before"
    );
    assert_eq!(
        run(cfg_with(Some(1024))),
        20_000,
        "streaming store: a spilled cache replays through its cursor, so arming still wins"
    );
    assert_eq!(
        run(OptimizerConfig {
            stream_spills: false,
            ..cfg_with(Some(1024))
        }),
        30_000,
        "rebuild-on-access strawman: 80 KB of cache against a 1 KiB budget buys nothing, skip it"
    );
    assert_eq!(
        run(OptimizerConfig {
            charge_spill_reads: false,
            stream_spills: false,
            ..cfg_with(Some(1024))
        }),
        20_000,
        "spill-blind cost model: arm on the byte threshold alone"
    );
}

/// Unit-flavoured cleanup law at the seam itself: a store that spilled
/// removes its directory on drop.
#[test]
fn partition_store_cleans_its_directory() {
    let parts: Vec<Vec<u64>> = (0..4).map(|p| vec![p; 64]).collect();
    let store = PartitionStore::prefilled(
        parts,
        StoreConfig {
            budget: Some(100),
            ..StoreConfig::default()
        },
    );
    let dir = store
        .spill_dir()
        .expect("a 2 KiB prefill against 100 B must spill")
        .to_path_buf();
    assert!(dir.is_dir());
    assert!(store.spilled_parts() > 0);
    drop(store);
    assert!(!dir.exists(), "drop must remove the spill directory");
}
