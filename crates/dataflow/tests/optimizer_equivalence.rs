//! Optimizer equivalence laws, pinned on a seeded grid of random DAGs.
//!
//! The plan optimizer's hard contract: fusing narrow ops, eliding
//! co-partitioned shuffles, and auto-caching shared subtrees must be
//! *invisible* in the results. For every seed in the grid this suite
//! builds the same pipeline twice — once under [`OptimizerConfig::default`]
//! (all rewrites on) and once under [`OptimizerConfig::naive`] (all off) —
//! and demands identical output: exact row order for narrow-only plans,
//! multiset equality once a shuffle's hash-map grouping is involved. The
//! law is then re-checked across the Seq / Rayon / Cluster executors and
//! under benign transport chaos (duplicates, reordering, delay).
//!
//! The base seed is `0xC0FFEE_5EED`, overridable via `OPTIMIZER_LAWS_SEED`
//! so CI can roll a fresh grid per run while logging the seed for replay.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use peachy_cluster::{EdgeFault, Executor, FaultPlan};
use peachy_dataflow::{Dataset, KeyedDataset, OptimizerConfig, RetryPolicy, ShuffleStats};
use peachy_prng::{Lcg64, RandomStream};

fn base_seed() -> u64 {
    std::env::var("OPTIMIZER_LAWS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE_5EED)
}

/// One random pipeline: a narrow chain over a deterministic source,
/// usually followed by a chain of wide (shuffle-backed) ops. Both builds
/// of a seed draw the same random choices, so the only difference between
/// the two pipelines is `cfg`. Returns the final dataset plus whether any
/// shuffle is involved (wide plans compare as multisets: the reduce-side
/// hash grouping makes row order nondeterministic even run-to-run).
fn build(seed: u64, cfg: OptimizerConfig) -> (Dataset<(u64, u64)>, bool) {
    let mut rng = Lcg64::seed_from(seed);
    let rows = 50 + (rng.next_u64() % 350) as usize;
    let parts = 1 + (rng.next_u64() % 7) as usize;
    let source: Vec<u64> = (0..rows as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24)
        .collect();
    let mut ds = Dataset::from_vec(source, parts).with_optimizer(cfg);

    let narrow_ops = rng.next_u64() % 6;
    for _ in 0..narrow_ops {
        ds = match rng.next_u64() % 7 {
            0 => ds.map(|x| x.wrapping_mul(3).wrapping_add(1)),
            1 => {
                let m = 2 + rng.next_u64() % 5;
                ds.filter(move |x| x % m != 0)
            }
            2 => ds.flat_map(|x| {
                if x % 2 == 0 {
                    vec![x, x / 2]
                } else {
                    vec![x]
                }
            }),
            3 => ds.union_with(&ds.map(|x| x ^ 0xFF)),
            4 => ds.cache(),
            5 => {
                let p = 1 + (rng.next_u64() % 7) as usize;
                ds.repartition(p)
            }
            _ => ds.with_retry(RetryPolicy::default()),
        };
    }

    if rng.next_u64() % 4 == 0 {
        // Narrow-only plan: exact order must survive fusion + auto-cache.
        return (ds.map(|x| (x, x)), false);
    }

    let modulus = 2 + rng.next_u64() % 9;
    let mut keyed = ds.key_by(move |x| x % modulus);
    let wide_ops = 1 + rng.next_u64() % 3;
    for _ in 0..wide_ops {
        keyed = match rng.next_u64() % 5 {
            0 => keyed.count_by_key(),
            1 => keyed.reduce_by_key(|a, b| a.wrapping_add(b)),
            2 => keyed.reduce_by_key(|a, b| a.min(b)).map_values(|v| v.rotate_left(7)),
            3 => keyed.group_by_key().map_values(|vs| vs.len() as u64),
            _ => {
                // Diamond: the same subtree feeds both join sides, so this
                // arm exercises auto-cache AND co-partitioned join elision.
                let other = keyed.count_by_key();
                keyed
                    .reduce_by_key(|a, b| a.wrapping_add(b))
                    .join(&other)
                    .map_values(|(v, w)| v ^ w)
            }
        };
    }
    (keyed.rows(), true)
}

fn canon(mut rows: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    rows.sort_unstable();
    rows
}

fn assert_same(seed: u64, wide: bool, optimized: Vec<(u64, u64)>, naive: Vec<(u64, u64)>) {
    if wide {
        assert_eq!(
            canon(optimized),
            canon(naive),
            "seed {seed}: optimized multiset diverged from naive"
        );
    } else {
        assert_eq!(
            optimized, naive,
            "seed {seed}: optimized rows or row order diverged from naive"
        );
    }
}

#[test]
fn optimized_plans_match_naive_across_seed_grid() {
    let base = base_seed();
    println!("optimizer-laws grid base seed: {base:#x}");
    for i in 0..32 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let (opt_ds, wide) = build(seed, OptimizerConfig::default());
        let (naive_ds, naive_wide) = build(seed, OptimizerConfig::naive());
        assert_eq!(wide, naive_wide, "builder must be deterministic in seed");
        assert_same(seed, wide, opt_ds.collect(), naive_ds.collect());
        assert_eq!(opt_ds.count(), naive_ds.count(), "seed {seed}: count");

        // The explain report is advisory, but its cost model must never
        // claim the rewrites ADD traffic.
        let report = opt_ds.explain_plans();
        assert!(
            report.predicted_optimized_shuffle_bytes <= report.predicted_naive_shuffle_bytes,
            "seed {seed}: optimizer predicted a regression:\n{report}"
        );
    }
}

#[test]
fn optimized_results_agree_on_every_backend() {
    let base = base_seed() ^ 0xBAC0;
    for i in 0..8 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let (naive_ds, wide) = build(seed, OptimizerConfig::naive());
        let reference = canon(naive_ds.collect());
        for exec in [Executor::seq(), Executor::rayon(3), Executor::cluster(4)] {
            for cfg in [OptimizerConfig::default(), OptimizerConfig::naive()] {
                let (ds, w) = build(seed, cfg);
                assert_eq!(w, wide);
                let got = ds.collect_with(&exec);
                if wide {
                    assert_eq!(canon(got), reference, "seed {seed} on {exec:?}");
                } else {
                    // collect_with must preserve the exact serial order too.
                    assert_eq!(got, naive_ds.collect(), "seed {seed} on {exec:?}");
                }
                assert_eq!(ds.count_with(&exec), reference.len(), "seed {seed} count");
            }
        }
    }
}

#[test]
fn benign_chaos_does_not_change_results() {
    let base = base_seed() ^ 0x000C_4A05;
    for i in 0..6 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let plan = FaultPlan::new(seed).all_edges(EdgeFault {
            drop_p: 0.0,
            dup_p: 0.2,
            reorder_p: 0.3,
            delay: Duration::from_micros(50),
        });
        let chaotic = Executor::Cluster { ranks: 4, plan };
        let (naive_ds, wide) = build(seed, OptimizerConfig::naive());
        let reference = canon(naive_ds.collect());
        for cfg in [OptimizerConfig::default(), OptimizerConfig::naive()] {
            let (ds, _) = build(seed, cfg);
            let got = ds.collect_with(&chaotic);
            if wide {
                assert_eq!(canon(got), reference, "seed {seed} under chaos");
            } else {
                assert_eq!(got, naive_ds.collect(), "seed {seed} under chaos");
            }
        }
    }
}

/// Negative law: an intervening repartition destroys the hash layout, so
/// the optimizer must NOT elide the next shuffle — and saying so must not
/// change the rows.
#[test]
fn repartition_between_aggregations_blocks_elision() {
    let rows: Vec<(u64, u64)> = (0..400).map(|i| (i % 13, 1)).collect();
    let run = |cfg: OptimizerConfig| {
        let stats = ShuffleStats::new();
        let first = KeyedDataset::from_dataset(Dataset::from_vec(rows.clone(), 4).with_optimizer(cfg))
            .with_stats(Arc::clone(&stats))
            .count_by_key();
        let rebalanced = KeyedDataset::from_dataset(first.rows().repartition(6))
            .with_stats(Arc::clone(&stats));
        let out = canon(rebalanced.reduce_by_key(|a, b| a + b).collect());
        (out, stats.shuffles(), stats.shuffles_elided())
    };
    let (optimized, shuffles, elided) = run(OptimizerConfig::default());
    let (naive, naive_shuffles, naive_elided) = run(OptimizerConfig::naive());
    assert_eq!(optimized, naive);
    assert_eq!(
        (shuffles, elided),
        (2, 0),
        "repartition resets the layout claim; both boundaries must move data"
    );
    assert_eq!((naive_shuffles, naive_elided), (2, 0));
    let expected: Vec<(u64, u64)> = (0..13)
        .map(|k| (k, if k < 400 % 13 { 31 } else { 30 }))
        .collect();
    assert_eq!(optimized, expected);
}

/// Regression for the double-compute bug: a subtree consumed by several
/// actions used to be recomputed per action. With the optimizer on, the
/// auto-cache arms once the lifetime consumer count reaches two and fills
/// during that second action, so the third and every later action replays
/// pinned rows. The naive config preserves the old recomputing behaviour.
#[test]
fn shared_subtree_is_not_recomputed_across_actions() {
    let calls = Arc::new(AtomicUsize::new(0));
    let run = |cfg: OptimizerConfig| {
        let calls = Arc::clone(&calls);
        calls.store(0, Ordering::SeqCst);
        let counter = Arc::clone(&calls);
        let ds = Dataset::from_vec((0..1_000u64).collect::<Vec<_>>(), 4)
            .with_optimizer(cfg)
            .map(move |x| {
                counter.fetch_add(1, Ordering::SeqCst);
                x.wrapping_mul(7)
            });
        let total = ds.reduce(|a, b| a.wrapping_add(b));
        let n = ds.count();
        assert_eq!(ds.collect().len(), 1_000);
        assert_eq!(n, 1_000);
        assert!(total.is_some());
        calls.load(Ordering::SeqCst)
    };
    assert_eq!(
        run(OptimizerConfig::default()),
        2_000,
        "the third action must replay the auto-cached rows, not the closure"
    );
    assert_eq!(run(OptimizerConfig::naive()), 3_000);
}

/// The shuffle post-image is memoized independently of the optimizer:
/// repeated actions on one keyed result replay the posted buckets, so the
/// map-side closure runs exactly once even under the naive config.
#[test]
fn shuffle_memoization_survives_repeated_actions() {
    let calls = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&calls);
    let ds = Dataset::from_vec((0..600u64).collect::<Vec<_>>(), 3)
        .with_optimizer(OptimizerConfig::naive())
        .map(move |x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
    let reduced = ds.key_by(|x| x % 9).reduce_by_key(|a, b| a + b);
    let first = canon(reduced.collect());
    let n = reduced.count();
    let second = canon(reduced.collect());
    assert_eq!(first, second);
    assert_eq!(n, 9);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        600,
        "three actions, one map-side pass"
    );
}
