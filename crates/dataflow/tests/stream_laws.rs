//! Streaming out-of-core laws: pulling spilled rows through cursors must
//! change *nothing* but the memory high-water mark.
//!
//! [`OptimizerConfig::stream_spills`] swaps every rebuild-the-partition
//! read for a row cursor ([`peachy_dataflow::store::RowCursor`]) and every
//! concatenate-then-encode spill for an incremental
//! [`peachy_dataflow::store::SpillSink`]. The laws here pin the two sides
//! of that trade on the same seeded random-DAG grid the spill laws use:
//!
//! * rows and non-spill counters are bit-identical to mem-mode (and to the
//!   rebuild-on-access strawman) at every budget, on every executor, and
//!   under benign transport chaos;
//! * the deterministic [`ShuffleStats::peak_resident_bytes`] meter never
//!   reads higher streaming than rebuilding, and on a skewed group it
//!   reads *strictly* lower — the residency win the mode exists for.
//!
//! CI rolls a fresh grid per run via `PEACHY_CHAOS_SEED`, logging it for
//! replay.

use std::sync::Arc;
use std::time::Duration;

use peachy_cluster::{EdgeFault, Executor, FaultPlan};
use peachy_dataflow::{Dataset, OptimizerConfig, RetryPolicy, ShuffleStats};
use peachy_prng::{Lcg64, RandomStream};

fn base_seed() -> u64 {
    std::env::var("PEACHY_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE_5EED)
}

/// Budgets that actually spill on the generator's row counts.
const SPILL_BUDGETS: [u64; 2] = [64 * 1024, 1024];

/// A config pair differing only in how spilled partitions are consumed.
/// `charge_spill_reads` is off so the auto-cache arming decision is
/// byte-threshold-only and therefore *identical* in both modes — the runs
/// execute the same plan and differ purely in cursor-vs-rebuild reads,
/// which is exactly what the peak comparison must isolate.
fn cfg(budget: Option<u64>, stream: bool) -> OptimizerConfig {
    OptimizerConfig {
        spill_budget: budget,
        stream_spills: stream,
        charge_spill_reads: false,
        ..OptimizerConfig::default()
    }
}

/// The same seeded random-pipeline generator as `spill_laws.rs` (kept in
/// lockstep by hand — integration tests cannot share modules): covers
/// narrow chains, caches, repartitions, retries, unions, and 1–3 chained
/// wide ops over 1–7 partitions.
fn build(seed: u64, cfg: OptimizerConfig) -> (Dataset<(u64, u64)>, bool, Arc<ShuffleStats>) {
    let stats = ShuffleStats::new();
    let mut rng = Lcg64::seed_from(seed);
    let rows = 50 + (rng.next_u64() % 350) as usize;
    let parts = 1 + (rng.next_u64() % 7) as usize;
    let source: Vec<u64> = (0..rows as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24)
        .collect();
    let mut ds = Dataset::from_vec_with(source, parts, cfg).with_stats(Arc::clone(&stats));

    let narrow_ops = rng.next_u64() % 6;
    for _ in 0..narrow_ops {
        ds = match rng.next_u64() % 7 {
            0 => ds.map(|x| x.wrapping_mul(3).wrapping_add(1)),
            1 => {
                let m = 2 + rng.next_u64() % 5;
                ds.filter(move |x| x % m != 0)
            }
            2 => ds.flat_map(|x| {
                if x % 2 == 0 {
                    vec![x, x / 2]
                } else {
                    vec![x]
                }
            }),
            3 => ds.union_with(&ds.map(|x| x ^ 0xFF)),
            4 => ds.cache(),
            5 => {
                let p = 1 + (rng.next_u64() % 7) as usize;
                ds.repartition(p)
            }
            _ => ds.with_retry(RetryPolicy::default()),
        };
    }

    if rng.next_u64() % 4 == 0 {
        return (ds.map(|x| (x, x)), false, stats);
    }

    let modulus = 2 + rng.next_u64() % 9;
    let mut keyed = ds
        .key_by(move |x| x % modulus)
        .with_stats(Arc::clone(&stats));
    let wide_ops = 1 + rng.next_u64() % 3;
    for _ in 0..wide_ops {
        keyed = match rng.next_u64() % 5 {
            0 => keyed.count_by_key(),
            1 => keyed.reduce_by_key(|a, b| a.wrapping_add(b)),
            2 => keyed.reduce_by_key(|a, b| a.min(b)).map_values(|v| v.rotate_left(7)),
            3 => keyed.group_by_key().map_values(|vs| vs.len() as u64),
            _ => {
                let other = keyed.count_by_key();
                keyed
                    .reduce_by_key(|a, b| a.wrapping_add(b))
                    .join(&other)
                    .map_values(|(v, w)| v ^ w)
            }
        };
    }
    (keyed.rows(), true, stats)
}

fn canon(mut rows: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    rows.sort_unstable();
    rows
}

fn non_spill_counters(stats: &ShuffleStats) -> (u64, u64, u64, u64) {
    (
        stats.records(),
        stats.bytes(),
        stats.shuffles(),
        stats.shuffles_elided(),
    )
}

/// The central grid law: at every spilling budget, both consumption modes
/// reproduce the unbudgeted rows and ledger exactly, and the streaming
/// peak never exceeds the rebuild peak.
#[test]
fn streaming_is_bit_identical_and_never_peaks_higher() {
    let base = base_seed();
    println!("stream-laws grid base seed: {base:#x}");
    for i in 0..16 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let (ref_ds, wide, ref_stats) = build(seed, cfg(None, true));
        let reference = ref_ds.collect();
        for budget in SPILL_BUDGETS {
            let mut peaks = [0u64; 2];
            for (slot, stream) in [(0usize, true), (1usize, false)] {
                let (ds, w, stats) = build(seed, cfg(Some(budget), stream));
                assert_eq!(w, wide, "builder must be deterministic in seed");
                let got = ds.collect();
                if wide {
                    assert_eq!(
                        canon(got),
                        canon(reference.clone()),
                        "seed {seed} at budget {budget} (stream={stream}): multiset diverged"
                    );
                } else {
                    assert_eq!(
                        got, reference,
                        "seed {seed} at budget {budget} (stream={stream}): rows diverged"
                    );
                }
                assert_eq!(
                    non_spill_counters(&stats),
                    non_spill_counters(&ref_stats),
                    "seed {seed} at budget {budget} (stream={stream}): ledger diverged"
                );
                peaks[slot] = stats.peak_resident_bytes();
            }
            assert!(
                peaks[0] <= peaks[1],
                "seed {seed} at budget {budget}: streaming peak {} exceeds rebuild peak {}",
                peaks[0],
                peaks[1]
            );
        }
    }
}

/// The streamed rows survive every executor and benign transport chaos —
/// scheduling and message mischief cannot observe the cursor seam.
#[test]
fn streaming_holds_on_every_executor_and_under_chaos() {
    let base = base_seed() ^ 0x57EA;
    for i in 0..4 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let (ref_ds, wide, _) = build(seed, cfg(None, true));
        let reference = canon(ref_ds.collect());
        let plan = FaultPlan::new(seed).all_edges(EdgeFault {
            drop_p: 0.0,
            dup_p: 0.2,
            reorder_p: 0.3,
            delay: Duration::from_micros(50),
        });
        let execs = [
            Executor::seq(),
            Executor::rayon(3),
            Executor::cluster(4),
            Executor::Cluster { ranks: 4, plan },
        ];
        for exec in execs {
            for budget in SPILL_BUDGETS {
                let (ds, _, _) = build(seed, cfg(Some(budget), true));
                let got = ds.collect_with(&exec);
                if wide {
                    assert_eq!(canon(got), reference, "seed {seed} at {budget} on {exec:?}");
                } else {
                    assert_eq!(got, ref_ds.collect(), "seed {seed} at {budget} on {exec:?}");
                }
            }
        }
    }
}

/// The high-water meter is a pure function of (data, budget, config): the
/// charge set is fixed by the plan and `max` is order-free, so repeats and
/// executor swaps read the same number.
#[test]
fn peak_meter_is_deterministic() {
    let base = base_seed() ^ 0x00AB_C4E5;
    for i in 0..6 {
        let seed = base.wrapping_add(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
        for budget in SPILL_BUDGETS {
            let peak_with = |exec: Option<&Executor>| {
                let (ds, _, stats) = build(seed, cfg(Some(budget), true));
                match exec {
                    Some(e) => {
                        ds.collect_with(e);
                    }
                    None => {
                        ds.collect();
                    }
                }
                stats.peak_resident_bytes()
            };
            let reference = peak_with(None);
            assert_eq!(
                peak_with(None),
                reference,
                "seed {seed} at {budget}: repeat moved the peak"
            );
            for exec in [Executor::seq(), Executor::rayon(3), Executor::cluster(4)] {
                assert_eq!(
                    peak_with(Some(&exec)),
                    reference,
                    "seed {seed} at {budget} on {exec:?}: executor moved the peak"
                );
            }
        }
    }
}

/// The residency win, pinned strictly: a fully skewed group-by routes the
/// whole dataset into one shuffle bucket (~256 KiB against a 1 KiB
/// budget). The rebuild strawman must materialize that bucket to post it;
/// the streaming merge decodes it row-by-row, so its high-water mark stays
/// at the (half-sized) posted groups and never sees the bucket itself.
#[test]
fn streaming_peak_is_strictly_below_rebuild_on_a_skewed_group() {
    let run = |stream: bool| {
        let stats = ShuffleStats::new();
        let rows: Vec<u64> = (0..16_000).collect();
        let ds = Dataset::from_vec_with(rows, 8, cfg(Some(1024), stream))
            .with_stats(Arc::clone(&stats));
        let grouped = ds
            .key_by(|_| 0u64)
            .with_stats(Arc::clone(&stats))
            .group_by_key();
        let out = grouped.collect();
        assert_eq!(out.len(), 1, "one key, one group");
        assert_eq!(out[0].1.len(), 16_000, "every row grouped");
        assert!(stats.spills() > 0, "a 1 KiB budget over 256 KiB must spill");
        stats.peak_resident_bytes()
    };
    let streamed = run(true);
    let rebuilt = run(false);
    assert!(
        streamed < rebuilt,
        "streaming must strictly lower the high-water mark: streamed {streamed} B vs rebuilt {rebuilt} B"
    );
}

/// The optimizer knows which nodes stream: a budgeted plan report counts
/// them and renders the `stream@` residency tag; the strawman config
/// reports the same spill picture without the tag.
#[test]
fn plan_report_renders_streamed_nodes() {
    let build_report = |stream: bool| {
        let rows: Vec<u64> = (0..16_000).collect();
        let ds = Dataset::from_vec_with(rows, 4, cfg(Some(1024), stream));
        let keyed = ds.key_by(|x| x % 3).group_by_key();
        keyed.collect();
        keyed.explain_plans()
    };
    let streamed = build_report(true);
    assert!(
        streamed.streamed_nodes > 0,
        "spilled stores under a streaming config must report as streamed"
    );
    let text = streamed.to_string();
    assert!(
        text.contains("stream@1024B"),
        "report must tag streaming residency:\n{text}"
    );
    assert!(text.contains("node(s) streamed"), "summary line:\n{text}");

    let rebuilt = build_report(false);
    assert_eq!(
        rebuilt.streamed_nodes, 0,
        "the strawman rebuilds: no node may claim to stream"
    );
    assert!(!rebuilt.to_string().contains("stream@"));
}
