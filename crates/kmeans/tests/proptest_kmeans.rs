//! Property tests: strategy equivalence and k-means invariants.

use peachy_data::synth::gaussian_blobs;
use peachy_data::Matrix;
use peachy_kmeans::{fit, fit_distributed, fit_seq, inertia, random_init, KMeansConfig, Strategy};
use proptest::prelude::*;

fn cfg(max_iters: usize) -> KMeansConfig {
    KMeansConfig {
        max_iters,
        min_changes: 0,
        min_shift: 1e-12,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every parallel strategy produces the sequential assignments.
    #[test]
    fn strategies_equal_sequential(
        n in 20usize..400,
        d in 1usize..5,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(n >= k);
        let data = gaussian_blobs(n, d, k as u32, 1.0, seed);
        let init = random_init(&data.points, k, seed ^ 0xabcd);
        let seq = fit_seq(&data.points, &cfg(30), init.clone());
        for strategy in [Strategy::Critical, Strategy::Atomic, Strategy::Reduction] {
            let par = fit(&data.points, &cfg(30), init.clone(), strategy);
            prop_assert_eq!(&par.assignments, &seq.assignments);
            prop_assert_eq!(par.iterations, seq.iterations);
        }
    }

    /// Distributed equals sequential for arbitrary rank counts.
    #[test]
    fn distributed_equals_sequential(
        n in 20usize..300,
        k in 1usize..5,
        ranks in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(n >= k);
        let data = gaussian_blobs(n, 2, k as u32, 1.0, seed);
        let init = random_init(&data.points, k, seed ^ 0x1234);
        let seq = fit_seq(&data.points, &cfg(25), init.clone());
        let dist = fit_distributed(&data.points, &cfg(25), init, ranks);
        prop_assert_eq!(dist.assignments, seq.assignments);
    }

    /// Each point's final assignment really is its nearest final centroid
    /// when the run converged by assignment stability. The assignment
    /// kernel scores candidates via the ‖c‖² − 2x·c decomposition, which
    /// can differ from the exact Σ(x−c)² by ~1 ulp — so a disagreement
    /// with the exact argmin is tolerated only if the two candidates are
    /// equidistant to within that rounding window.
    #[test]
    fn converged_assignments_are_nearest(
        n in 20usize..300,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(n >= k);
        let data = gaussian_blobs(n, 3, k as u32, 0.8, seed);
        let init = random_init(&data.points, k, seed ^ 0x77);
        let r = fit_seq(&data.points, &KMeansConfig::default(), init);
        if r.termination == peachy_kmeans::Termination::FewChanges {
            for i in 0..n {
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let d2 = peachy_data::matrix::squared_distance(
                        data.points.row(i),
                        r.centroids.row(c),
                    );
                    if d2 < best_d {
                        best_d = d2;
                        best = c as u32;
                    }
                }
                let a = r.assignments[i];
                if a != best {
                    let da = peachy_data::matrix::squared_distance(
                        data.points.row(i),
                        r.centroids.row(a as usize),
                    );
                    prop_assert!(
                        (da - best_d).abs() <= 1e-9 * (1.0 + da + best_d),
                        "point {} assigned {} (d2={}) but nearest is {} (d2={})",
                        i, a, da, best, best_d
                    );
                }
            }
        }
    }

    /// Inertia decreases (weakly) with more iterations of the same run.
    #[test]
    fn inertia_monotone(n in 30usize..200, k in 2usize..5, seed in any::<u64>()) {
        prop_assume!(n >= k);
        let data = gaussian_blobs(n, 2, k as u32, 1.5, seed);
        let mut centroids = random_init(&data.points, k, seed ^ 0x5a);
        let mut last = f64::INFINITY;
        for _ in 0..6 {
            let r = fit_seq(&data.points, &cfg(1), centroids.clone());
            let obj = inertia(&data.points, &r.centroids, &r.assignments);
            prop_assert!(obj <= last + 1e-9);
            last = obj;
            centroids = r.centroids;
        }
    }

    /// k = n converges to zero inertia with each point its own centroid.
    #[test]
    fn k_equals_n(n in 2usize..20, seed in any::<u64>()) {
        // Distinct 1-D points.
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 2.0]).collect();
        let m = Matrix::from_rows(&rows);
        let r = fit_seq(&m, &KMeansConfig::default(), m.clone());
        prop_assert_eq!(inertia(&m, &r.centroids, &r.assignments), 0.0);
        let _ = seed;
    }
}
