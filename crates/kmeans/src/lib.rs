//! # peachy-kmeans
//!
//! *K*-means clustering — the §3 Peachy assignment, including the
//! **parallelization-strategy ladder** the assignment walks students
//! through:
//!
//! 1. detect the race conditions in the assignment and update phases;
//! 2. solve them with **critical regions** ([`Strategy::Critical`] — one
//!    mutex around the shared accumulators);
//! 3. improve efficiency with **atomic operations**
//!    ([`Strategy::Atomic`] — CAS loops on bit-cast `f64` sums);
//! 4. eliminate the races entirely with a **reduction**
//!    ([`Strategy::Reduction`] — per-chunk partials merged
//!    deterministically).
//!
//! plus the **distributed-memory** version ([`distributed::fit_distributed`])
//! on [`peachy_cluster`] collectives, where "students who reach the fourth
//! step in OpenMP find MPI easier since a distributed reduction is needed
//! in any case".
//!
//! The sequential reference ([`seq::fit_seq`]) mirrors the assignment's
//! "intentionally understandable" starter code: a main loop with an
//! assignment phase (tracking *cluster changes*) and an update phase
//! (counting members and summing coordinates), terminating on any of three
//! thresholds — iteration count, cluster changes, or centroid displacement.
//!
//! ```
//! use peachy_data::synth::gaussian_blobs;
//! use peachy_kmeans::{fit, init, KMeansConfig, Strategy};
//!
//! let data = gaussian_blobs(1000, 2, 3, 0.4, 7);
//! let config = KMeansConfig::default();
//! let centroids = init::random_init(&data.points, 3, 42);
//! let result = fit(&data.points, &config, centroids, Strategy::Reduction);
//! assert_eq!(result.centroids.rows(), 3);
//! assert!(result.iterations <= config.max_iters);
//! ```

// Numeric kernels below use explicit index loops deliberately: they mirror
// the assignments' pseudocode and keep stencil/neighbour indexing visible.
#![allow(clippy::needless_range_loop)]

pub mod config;
pub mod distributed;
pub mod executor;
pub mod gpu;
pub mod init;
pub mod locality;
pub mod metrics;
pub mod quality;
pub mod seq;
pub mod strategies;

pub use config::{KMeansConfig, KMeansResult, Termination};
pub use distributed::{fit_distributed, fit_distributed_resilient, ResilientFit};
pub use executor::{fit_with, fit_with_stats};
pub use gpu::{fit_gpu, GpuLaunch, GpuStrategy};
pub use init::{kmeans_plus_plus, random_init};
pub use locality::fit_buffers;
pub use metrics::inertia;
pub use quality::{elbow_sweep, silhouette, ElbowPoint};
pub use seq::fit_seq;
pub use strategies::{fit, Strategy};
