//! Centroid initialization: random point sampling (the starter code's
//! method) and k-means++ (an extension for better seeds).

use peachy_data::Matrix;
use peachy_prng::{Lcg64, RandomStream};

use crate::metrics::point_dist2;

/// Pick `k` distinct data points uniformly at random as initial centroids
/// — "initially, centroid positions are chosen randomly".
pub fn random_init(points: &Matrix, k: usize, seed: u64) -> Matrix {
    assert!(k >= 1, "k must be positive");
    assert!(points.rows() >= k, "need at least k points");
    let mut rng = Lcg64::seed_from(seed);
    // Partial Fisher–Yates: draw k distinct indices.
    let n = points.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.next_below((n - i) as u64) as usize;
        idx.swap(i, j);
    }
    points.select_rows(&idx[..k])
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007): the first centroid is
/// uniform; each subsequent centroid is drawn with probability proportional
/// to its squared distance from the nearest already-chosen centroid.
pub fn kmeans_plus_plus(points: &Matrix, k: usize, seed: u64) -> Matrix {
    assert!(k >= 1, "k must be positive");
    assert!(points.rows() >= k, "need at least k points");
    let mut rng = Lcg64::seed_from(seed);
    let n = points.rows();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    chosen.push(rng.next_below(n as u64) as usize);
    // dist2[i] = squared distance to the nearest chosen centroid.
    let mut dist2: Vec<f64> = (0..n)
        .map(|i| point_dist2(points.row(i), points.row(chosen[0])))
        .collect();
    while chosen.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with centroids; pick any unchosen.
            (0..n)
                .find(|i| !chosen.contains(i))
                .expect("k <= n guarantees a spare point")
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        chosen.push(next);
        for i in 0..n {
            let d = point_dist2(points.row(i), points.row(next));
            if d < dist2[i] {
                dist2[i] = d;
            }
        }
    }
    points.select_rows(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn random_init_picks_distinct_points() {
        let data = gaussian_blobs(100, 3, 4, 1.0, 1);
        let c = random_init(&data.points, 10, 5);
        assert_eq!(c.rows(), 10);
        // All centroids are actual data points.
        for ci in 0..c.rows() {
            let found = (0..data.points.rows()).any(|pi| data.points.row(pi) == c.row(ci));
            assert!(found, "centroid {ci} is not a data point");
        }
        // Distinct rows.
        for i in 0..c.rows() {
            for j in (i + 1)..c.rows() {
                assert_ne!(c.row(i), c.row(j), "duplicate centroids {i},{j}");
            }
        }
    }

    #[test]
    fn random_init_deterministic() {
        let data = gaussian_blobs(50, 2, 2, 1.0, 3);
        assert_eq!(
            random_init(&data.points, 3, 7),
            random_init(&data.points, 3, 7)
        );
        assert_ne!(
            random_init(&data.points, 3, 7),
            random_init(&data.points, 3, 8)
        );
    }

    #[test]
    fn plus_plus_spreads_centroids() {
        // On three tight, far-apart blobs, k-means++ should pick one seed
        // per blob almost surely; random init often doesn't.
        let data = gaussian_blobs(300, 2, 3, 0.05, 11);
        let c = kmeans_plus_plus(&data.points, 3, 13);
        // Each pair of centroids must be far apart (inter-blob distance ≫ 1).
        for i in 0..3 {
            for j in (i + 1)..3 {
                let d = point_dist2(c.row(i), c.row(j));
                assert!(d > 1.0, "centroids {i},{j} too close: {d}");
            }
        }
    }

    #[test]
    fn plus_plus_handles_duplicate_points() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![(i % 2) as f64]).collect();
        let m = peachy_data::Matrix::from_rows(&rows);
        let c = kmeans_plus_plus(&m, 2, 1);
        assert_eq!(c.rows(), 2);
        // Must have chosen one of each value.
        assert_ne!(c.row(0), c.row(1));
    }

    #[test]
    #[should_panic(expected = "at least k points")]
    fn too_few_points_rejected() {
        let m = peachy_data::Matrix::from_rows(&[vec![0.0]]);
        random_init(&m, 2, 1);
    }
}
