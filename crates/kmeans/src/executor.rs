//! The executor seam for k-means: one entry point, three backends.
//!
//! [`fit_with`] selects the implementation by [`Executor`] variant instead
//! of making callers pick among `fit_seq` / `fit` / `fit_distributed`:
//!
//! * `Seq` → the sequential reference ([`crate::seq::fit_seq`]);
//! * `Rayon { chunks }` → the reduction strategy over an `EvenBlocks(n,
//!   chunks)` decomposition — bit-identical to `fit(…, Reduction)` when
//!   `chunks` is the historical default width;
//! * `Cluster { ranks, plan }` → the collective-based distributed fit.
//!
//! Assignments are **identical across all three backends** (the shared
//! nearest-centroid kernel is decomposition-independent); centroids agree
//! to rounding, each backend bit-identical to its standalone counterpart.
//! [`fit_with_stats`] additionally reports comm-volume counters, which is
//! what the E15 experiment compares across backends: shared-memory
//! backends scatter/gather by borrowing (zero collective bytes), the
//! cluster backend pays for every element it moves.

use peachy_cluster::{CommStats, Executor};
use peachy_data::Matrix;

use crate::config::{KMeansConfig, KMeansResult};
use crate::distributed::fit_on_cluster;
use crate::seq::fit_seq;
use crate::strategies::{fit_impl, Strategy, REDUCTION_CHUNKS};

/// Run k-means on the chosen backend.
pub fn fit_with(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    exec: &Executor,
) -> KMeansResult {
    fit_with_opt_stats(points, config, init, exec, None)
}

/// [`fit_with`], also accumulating communication counters into `stats`.
pub fn fit_with_stats(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    exec: &Executor,
    stats: &CommStats,
) -> KMeansResult {
    fit_with_opt_stats(points, config, init, exec, Some(stats))
}

fn fit_with_opt_stats(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    exec: &Executor,
    stats: Option<&CommStats>,
) -> KMeansResult {
    match exec {
        Executor::Seq => fit_seq(points, config, init),
        Executor::Rayon { chunks } => {
            fit_impl(points, config, init, Strategy::Reduction, *chunks, stats)
        }
        Executor::Cluster { ranks, plan } => {
            fit_on_cluster(points, config, &init, *ranks, plan, stats).unwrap_or_else(|errors| {
                let primary = errors
                    .iter()
                    .find(|e| e.is_primary())
                    .unwrap_or(&errors[0]);
                panic!("{primary}");
            })
        }
    }
}

/// The historical reduction decomposition width, re-exported so callers
/// can request the exact backend-default geometry.
pub const DEFAULT_CHUNKS: usize = REDUCTION_CHUNKS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::strategies::fit;
    use peachy_data::synth::gaussian_blobs;

    fn cfg() -> KMeansConfig {
        KMeansConfig {
            max_iters: 50,
            min_changes: 0,
            min_shift: 1e-12,
        }
    }

    #[test]
    fn seq_backend_is_fit_seq() {
        let data = gaussian_blobs(500, 2, 3, 0.7, 11);
        let init = random_init(&data.points, 3, 12);
        let a = fit_with(&data.points, &cfg(), init.clone(), &Executor::seq());
        let b = fit_seq(&data.points, &cfg(), init);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn rayon_backend_is_reduction_strategy() {
        let data = gaussian_blobs(1_500, 3, 4, 1.0, 13);
        let init = random_init(&data.points, 4, 14);
        let a = fit_with(
            &data.points,
            &cfg(),
            init.clone(),
            &Executor::rayon(DEFAULT_CHUNKS),
        );
        let b = fit(&data.points, &cfg(), init, Strategy::Reduction);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids, "bit-identical to fit(Reduction)");
    }

    #[test]
    fn cluster_backend_is_fit_distributed() {
        let data = gaussian_blobs(700, 2, 3, 0.9, 15);
        let init = random_init(&data.points, 3, 16);
        let a = fit_with(&data.points, &cfg(), init.clone(), &Executor::cluster(4));
        let b = crate::distributed::fit_distributed(&data.points, &cfg(), init, 4);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids, "bit-identical to fit_distributed");
    }

    #[test]
    fn assignments_agree_across_backends_under_seeds() {
        for seed in [1u64, 2, 3] {
            let data = gaussian_blobs(900, 3, 4, 1.1, seed);
            let init = random_init(&data.points, 4, seed + 100);
            let seq = fit_with(&data.points, &cfg(), init.clone(), &Executor::seq());
            let ray = fit_with(&data.points, &cfg(), init.clone(), &Executor::rayon(64));
            let clu = fit_with(&data.points, &cfg(), init, &Executor::cluster(3));
            assert_eq!(seq.assignments, ray.assignments, "seed {seed}");
            assert_eq!(seq.assignments, clu.assignments, "seed {seed}");
            assert_eq!(seq.iterations, ray.iterations, "seed {seed}");
            assert_eq!(seq.iterations, clu.iterations, "seed {seed}");
        }
    }

    #[test]
    fn counters_rank_backends_by_comm_volume() {
        let data = gaussian_blobs(800, 2, 3, 0.8, 17);
        let init = random_init(&data.points, 3, 18);

        let seq_stats = CommStats::new();
        fit_with_stats(
            &data.points,
            &cfg(),
            init.clone(),
            &Executor::seq(),
            &seq_stats,
        );
        assert_eq!(seq_stats.collective_bytes(), 0);
        assert_eq!(seq_stats.scattered(), 0, "seq moves nothing");

        let ray_stats = CommStats::new();
        fit_with_stats(
            &data.points,
            &cfg(),
            init.clone(),
            &Executor::rayon(64),
            &ray_stats,
        );
        assert!(ray_stats.scattered() > 0, "rayon partitions per iteration");
        assert_eq!(ray_stats.collective_bytes(), 0, "borrows move no bytes");

        let clu_stats = CommStats::new();
        fit_with_stats(
            &data.points,
            &cfg(),
            init,
            &Executor::cluster(4),
            &clu_stats,
        );
        assert!(clu_stats.scattered() > 0);
        assert!(clu_stats.gathered() > 0);
        assert!(
            clu_stats.collective_bytes() > 0,
            "the cluster pays for every element it moves"
        );
    }
}
