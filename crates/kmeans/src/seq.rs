//! The sequential reference — a faithful port of the assignment's
//! "intentionally understandable" starter code.
//!
//! One iteration has the two phases the assignment names:
//!
//! 1. **Assignment**: each point is re-assigned to the cluster with the
//!    closest centroid; the code tracks the assignment array and the number
//!    of *cluster changes*. (These are the write/update races once
//!    parallelized.)
//! 2. **Update**: each cluster's new centroid is the arithmetic mean of its
//!    points, computed by counting members and summing coordinates. Empty
//!    clusters keep their previous centroid.
//!
//! Termination checks, in order: few changes, small shift, max iterations.

use peachy_data::kernels::Candidates;
use peachy_data::Matrix;

use crate::config::{KMeansConfig, KMeansResult, Termination};
use crate::metrics::point_dist2;

/// Run k-means sequentially from the given initial centroids.
pub fn fit_seq(points: &Matrix, config: &KMeansConfig, init: Matrix) -> KMeansResult {
    let k = init.rows();
    assert!(k >= 1, "need at least one centroid");
    assert!(points.rows() >= 1, "need at least one point");
    assert_eq!(points.cols(), init.cols(), "dimensionality mismatch");
    assert!(config.max_iters >= 1, "need at least one iteration");
    let d = points.cols();
    let n = points.rows();

    let mut centroids = init;
    let mut assignments: Vec<u32> = vec![u32::MAX; n];
    let mut iterations = 0;

    loop {
        // Phase 1: assignment (+ change counting). Centroid norms are
        // hoisted once per iteration; the per-point scan is the same
        // kernel every parallel implementation uses.
        let cand = Candidates::new(&centroids);
        let mut changes = 0usize;
        for i in 0..n {
            let a = cand.nearest(points.row(i));
            if assignments[i] != a {
                changes += 1;
                assignments[i] = a;
            }
        }

        // Phase 2: update (counts + coordinate sums → means).
        let mut counts = vec![0u64; k];
        let mut sums = vec![0.0f64; k * d];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a as usize] += 1;
            let row = points.row(i);
            let s = &mut sums[a as usize * d..(a as usize + 1) * d];
            for (acc, &v) in s.iter_mut().zip(row) {
                *acc += v;
            }
        }
        let mut shift: f64 = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // empty cluster: centroid stays put
            }
            let inv = 1.0 / counts[c] as f64;
            let new: Vec<f64> = sums[c * d..(c + 1) * d].iter().map(|s| s * inv).collect();
            shift = shift.max(point_dist2(&new, centroids.row(c)).sqrt());
            centroids.row_mut(c).copy_from_slice(&new);
        }
        iterations += 1;

        let termination = if changes <= config.min_changes {
            Some(Termination::FewChanges)
        } else if shift <= config.min_shift {
            Some(Termination::SmallShift)
        } else if iterations >= config.max_iters {
            Some(Termination::MaxIters)
        } else {
            None
        };
        if let Some(termination) = termination {
            return KMeansResult {
                centroids,
                assignments,
                iterations,
                termination,
                last_changes: changes,
                last_shift: shift,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::metrics::inertia;
    use peachy_data::synth::gaussian_blobs;

    fn cfg() -> KMeansConfig {
        KMeansConfig::default()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = gaussian_blobs(600, 2, 3, 0.2, 5);
        let init = crate::init::kmeans_plus_plus(&data.points, 3, 17);
        let r = fit_seq(&data.points, &cfg(), init);
        // Same-blob points share a cluster.
        for i in 0..data.len() {
            for j in (i + 1)..data.len().min(i + 50) {
                if data.labels[i] == data.labels[j] {
                    assert_eq!(r.assignments[i], r.assignments[j], "points {i},{j}");
                }
            }
        }
        assert_eq!(r.termination, Termination::FewChanges);
    }

    #[test]
    fn inertia_never_increases_across_iterations() {
        // Run one iteration at a time by chaining max_iters=1 runs.
        let data = gaussian_blobs(400, 3, 4, 1.5, 8);
        let mut centroids = random_init(&data.points, 4, 2);
        let mut last = f64::INFINITY;
        for _ in 0..10 {
            let r = fit_seq(
                &data.points,
                &KMeansConfig {
                    max_iters: 1,
                    min_changes: 0,
                    min_shift: 0.0,
                },
                centroids.clone(),
            );
            let obj = inertia(&data.points, &r.centroids, &r.assignments);
            assert!(obj <= last + 1e-9, "inertia rose: {last} → {obj}");
            last = obj;
            centroids = r.centroids;
        }
    }

    #[test]
    fn max_iters_respected() {
        let data = gaussian_blobs(200, 2, 4, 3.0, 9);
        let r = fit_seq(
            &data.points,
            &KMeansConfig {
                max_iters: 3,
                min_changes: 0,
                min_shift: 0.0,
            },
            random_init(&data.points, 4, 1),
        );
        assert!(r.iterations <= 3);
        if r.iterations == 3 && r.last_changes > 0 && r.last_shift > 0.0 {
            assert_eq!(r.termination, Termination::MaxIters);
        }
    }

    #[test]
    fn single_cluster_converges_to_mean() {
        let data = gaussian_blobs(100, 3, 2, 1.0, 4);
        let r = fit_seq(&data.points, &cfg(), random_init(&data.points, 1, 3));
        // Centroid equals the global mean.
        let n = data.points.rows() as f64;
        for j in 0..3 {
            let mean: f64 = (0..data.points.rows())
                .map(|i| data.points.get(i, j))
                .sum::<f64>()
                / n;
            assert!((r.centroids.get(0, j) - mean).abs() < 1e-9);
        }
        assert!(r.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        // Two coincident clusters of points at 0 and a far-away centroid
        // that captures nothing.
        let p = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2]]);
        let init = Matrix::from_rows(&[vec![0.0], vec![100.0]]);
        let r = fit_seq(&p, &cfg(), init);
        assert_eq!(r.centroids.get(1, 0), 100.0, "empty cluster must not move");
        assert!(r.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let p = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]);
        let r = fit_seq(&p, &cfg(), p.clone());
        assert_eq!(inertia(&p, &r.centroids, &r.assignments), 0.0);
    }

    #[test]
    fn change_threshold_terminates_early() {
        let data = gaussian_blobs(500, 2, 3, 0.3, 6);
        let r = fit_seq(
            &data.points,
            &KMeansConfig {
                max_iters: 100,
                min_changes: 500,
                min_shift: 0.0,
            },
            random_init(&data.points, 3, 5),
        );
        // Everything changes in iteration 1 (from unassigned), ≤ 500.
        assert_eq!(r.iterations, 1);
        assert_eq!(r.termination, Termination::FewChanges);
    }

    use peachy_data::Matrix;
}
