//! Configuration, termination criteria and results.

use peachy_data::Matrix;

/// Stopping thresholds, mirroring the assignment's three criteria: "the
/// program ends if thresholds on the number of iterations, number of
/// cluster changes, or centroid displacement are reached".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Hard cap on iterations.
    pub max_iters: usize,
    /// Stop when an iteration changes at most this many assignments.
    pub min_changes: usize,
    /// Stop when the largest centroid displacement (Euclidean) in an
    /// iteration is at most this.
    pub min_shift: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            min_changes: 0,
            min_shift: 1e-9,
        }
    }
}

/// Why the main loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Hit the iteration cap.
    MaxIters,
    /// Assignment churn fell to `min_changes` or below.
    FewChanges,
    /// Largest centroid displacement fell to `min_shift` or below.
    SmallShift,
}

/// Outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroid positions, one per row.
    pub centroids: Matrix,
    /// Cluster index per point.
    pub assignments: Vec<u32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Which criterion fired.
    pub termination: Termination,
    /// Assignment changes in the final iteration.
    pub last_changes: usize,
    /// Largest centroid displacement in the final iteration.
    pub last_shift: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = KMeansConfig::default();
        assert!(c.max_iters > 0);
        assert!(c.min_shift >= 0.0);
    }
}
