//! The CUDA leg of the assignment series, on the [`peachy_gpu`] execution
//! model: "For CUDA/OpenCL, students should use thread-blocks and
//! coalesced memory accesses. They then determine the situations when
//! atomic operations or reductions are more profitable."
//!
//! Device memory layout (one flat [`GlobalBuffer`], word offsets below):
//!
//! ```text
//! points      n·d   f64   row-major
//! centroids   k·d   f64
//! assignments n     u64
//! changes     1     u64
//! counts      k     u64
//! sums        k·d   f64
//! ```
//!
//! Each iteration launches one kernel that fuses the assignment phase and
//! the accumulation phase; the tiny centroid update (k·d work) runs on the
//! host, as real small-k CUDA implementations do. Two accumulation
//! strategies are provided for the atomics-vs-reduction comparison:
//!
//! * [`GpuStrategy::Atomic`] — every thread issues `k·d`-independent
//!   global atomic adds (simple, contended);
//! * [`GpuStrategy::BlockReduction`] — per-thread partials in shared
//!   memory, a block-tree merge, then **one** atomic add per word per
//!   block.

use peachy_data::Matrix;
use peachy_gpu::{GlobalBuffer, Kernel, Launch, Phase, ThreadCtx};

use crate::config::{KMeansConfig, KMeansResult, Termination};
use crate::metrics::point_dist2;

/// Accumulation strategy for the update phase on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuStrategy {
    /// Global atomics per point.
    Atomic,
    /// Shared-memory block reduction, then one atomic per block.
    BlockReduction,
}

/// Launch geometry for the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuLaunch {
    /// Number of blocks.
    pub grid: usize,
    /// Threads per block.
    pub block: usize,
}

impl Default for GpuLaunch {
    fn default() -> Self {
        Self { grid: 8, block: 64 }
    }
}

struct Offsets {
    n: usize,
    d: usize,
    k: usize,
    centroids: usize,
    assignments: usize,
    changes: usize,
    counts: usize,
    sums: usize,
}

impl Offsets {
    fn new(n: usize, d: usize, k: usize) -> Self {
        let centroids = n * d;
        let assignments = centroids + k * d;
        let changes = assignments + n;
        let counts = changes + 1;
        let sums = counts + k;
        Self {
            n,
            d,
            k,
            centroids,
            assignments,
            changes,
            counts,
            sums,
        }
    }
    fn total(&self) -> usize {
        self.sums + self.k * self.d
    }
}

/// The fused assign+accumulate kernel.
struct KMeansKernel {
    off: Offsets,
    strategy: GpuStrategy,
}

impl KMeansKernel {
    /// Per-thread shared slice length for the reduction strategy.
    fn slice_len(&self) -> usize {
        1 + self.off.k + self.off.k * self.off.d // changes + counts + sums
    }

    fn assign_point(&self, i: usize, g: &GlobalBuffer) -> (u32, bool) {
        let off = &self.off;
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for c in 0..off.k {
            let mut d2 = 0.0;
            for j in 0..off.d {
                let diff = g.load(i * off.d + j) - g.load(off.centroids + c * off.d + j);
                d2 += diff * diff;
            }
            if d2 < best_d {
                best_d = d2;
                best = c as u32;
            }
        }
        let old = g.load_u64(off.assignments + i);
        let changed = old != best as u64;
        g.store_u64(off.assignments + i, best as u64);
        (best, changed)
    }
}

impl Kernel for KMeansKernel {
    fn phases(&self) -> usize {
        unreachable!("depends on block_dim")
    }
    fn phases_for(&self, block_dim: usize) -> usize {
        match self.strategy {
            GpuStrategy::Atomic => 1,
            // accumulate + ceil(log2(block)) tree rounds + final atomic.
            GpuStrategy::BlockReduction => {
                1 + (usize::BITS - (block_dim - 1).leading_zeros()) as usize + 1
            }
        }
    }
    fn run(&self, phase: Phase, t: ThreadCtx, shared: &mut [f64], g: &GlobalBuffer) {
        let off = &self.off;
        match self.strategy {
            GpuStrategy::Atomic => {
                let mut i = t.global_id();
                while i < off.n {
                    let (a, changed) = self.assign_point(i, g);
                    if changed {
                        g.atomic_add_u64(off.changes, 1);
                    }
                    g.atomic_add_u64(off.counts + a as usize, 1);
                    for j in 0..off.d {
                        g.atomic_add(off.sums + a as usize * off.d + j, g.load(i * off.d + j));
                    }
                    i += t.grid_span();
                }
            }
            GpuStrategy::BlockReduction => {
                let sl = self.slice_len();
                let rounds = (usize::BITS - (t.block_dim - 1).leading_zeros()) as usize;
                if phase == 0 {
                    // Accumulate into this thread's private shared slice.
                    let base = t.thread * sl;
                    let mut i = t.global_id();
                    while i < off.n {
                        let (a, changed) = self.assign_point(i, g);
                        if changed {
                            shared[base] += 1.0;
                        }
                        shared[base + 1 + a as usize] += 1.0;
                        for j in 0..off.d {
                            shared[base + 1 + off.k + a as usize * off.d + j] +=
                                g.load(i * off.d + j);
                        }
                        i += t.grid_span();
                    }
                } else if phase <= rounds {
                    // Tree-merge slices: active thread adds its partner's.
                    let width = (t.block_dim.next_power_of_two() >> phase).max(1);
                    if t.thread < width && t.thread + width < t.block_dim {
                        let (dst, src) = (t.thread * sl, (t.thread + width) * sl);
                        for w in 0..sl {
                            let v = shared[src + w];
                            shared[dst + w] += v;
                        }
                    }
                } else if t.thread == 0 {
                    // One atomic add per word per block.
                    g.atomic_add_u64(off.changes, shared[0] as u64);
                    for c in 0..off.k {
                        g.atomic_add_u64(off.counts + c, shared[1 + c] as u64);
                    }
                    for w in 0..off.k * off.d {
                        g.atomic_add(off.sums + w, shared[1 + off.k + w]);
                    }
                }
            }
        }
    }
}

/// Run k-means on the simulated device.
pub fn fit_gpu(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    strategy: GpuStrategy,
    launch: GpuLaunch,
) -> KMeansResult {
    let k = init.rows();
    let d = points.cols();
    let n = points.rows();
    assert!(k >= 1 && n >= 1, "need data and centroids");
    assert_eq!(d, init.cols(), "dimensionality mismatch");
    let off = Offsets::new(n, d, k);

    // Device allocation: points + centroids, zero elsewhere; assignments
    // start at an impossible value so iteration 1 counts all changes.
    let mut host = vec![0.0f64; off.total()];
    host[..n * d].copy_from_slice(points.as_slice());
    host[off.centroids..off.centroids + k * d].copy_from_slice(init.as_slice());
    let g = GlobalBuffer::from_f64(&host);
    for i in 0..n {
        g.store_u64(off.assignments + i, u64::MAX);
    }

    let kernel = KMeansKernel {
        off: Offsets::new(n, d, k),
        strategy,
    };
    let shared = match strategy {
        GpuStrategy::Atomic => 0,
        GpuStrategy::BlockReduction => launch.block * kernel.slice_len(),
    };
    let mut centroids = init;
    let mut iterations = 0;
    loop {
        // Reset accumulators, upload current centroids.
        g.store_u64(off.changes, 0);
        for c in 0..k {
            g.store_u64(off.counts + c, 0);
        }
        for w in 0..k * d {
            g.store(off.sums + w, 0.0);
        }
        for (w, &v) in centroids.as_slice().iter().enumerate() {
            g.store(off.centroids + w, v);
        }

        Launch {
            grid: launch.grid,
            block: launch.block,
            shared,
        }
        .run(&kernel, &g);

        // Host-side update of the (tiny) centroid table.
        let changes = g.load_u64(off.changes) as usize;
        let mut shift: f64 = 0.0;
        for c in 0..k {
            let count = g.load_u64(off.counts + c);
            if count == 0 {
                continue;
            }
            let inv = 1.0 / count as f64;
            let new: Vec<f64> = (0..d).map(|j| g.load(off.sums + c * d + j) * inv).collect();
            shift = shift.max(point_dist2(&new, centroids.row(c)).sqrt());
            centroids.row_mut(c).copy_from_slice(&new);
        }
        iterations += 1;

        let termination = if changes <= config.min_changes {
            Some(Termination::FewChanges)
        } else if shift <= config.min_shift {
            Some(Termination::SmallShift)
        } else if iterations >= config.max_iters {
            Some(Termination::MaxIters)
        } else {
            None
        };
        if let Some(termination) = termination {
            let assignments: Vec<u32> = (0..n)
                .map(|i| g.load_u64(off.assignments + i) as u32)
                .collect();
            return KMeansResult {
                centroids,
                assignments,
                iterations,
                termination,
                last_changes: changes,
                last_shift: shift,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::seq::fit_seq;
    use peachy_data::synth::gaussian_blobs;

    fn cfg() -> KMeansConfig {
        KMeansConfig {
            max_iters: 40,
            min_changes: 0,
            min_shift: 1e-12,
        }
    }

    #[test]
    fn gpu_atomic_matches_sequential_assignments() {
        let data = gaussian_blobs(1_000, 3, 4, 1.0, 101);
        let init = random_init(&data.points, 4, 102);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let gpu = fit_gpu(
            &data.points,
            &cfg(),
            init,
            GpuStrategy::Atomic,
            GpuLaunch::default(),
        );
        assert_eq!(gpu.assignments, seq.assignments);
        assert_eq!(gpu.iterations, seq.iterations);
        assert_eq!(gpu.termination, seq.termination);
    }

    #[test]
    fn gpu_reduction_matches_sequential_assignments() {
        let data = gaussian_blobs(1_000, 3, 4, 1.0, 103);
        let init = random_init(&data.points, 4, 104);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let gpu = fit_gpu(
            &data.points,
            &cfg(),
            init,
            GpuStrategy::BlockReduction,
            GpuLaunch::default(),
        );
        assert_eq!(gpu.assignments, seq.assignments);
        assert_eq!(gpu.iterations, seq.iterations);
    }

    #[test]
    fn launch_geometry_does_not_change_answer() {
        let data = gaussian_blobs(500, 2, 3, 0.8, 105);
        let init = random_init(&data.points, 3, 106);
        let reference = fit_gpu(
            &data.points,
            &cfg(),
            init.clone(),
            GpuStrategy::Atomic,
            GpuLaunch { grid: 1, block: 1 },
        );
        for (grid, block) in [(2usize, 16usize), (8, 64), (3, 33)] {
            for strategy in [GpuStrategy::Atomic, GpuStrategy::BlockReduction] {
                let r = fit_gpu(
                    &data.points,
                    &cfg(),
                    init.clone(),
                    strategy,
                    GpuLaunch { grid, block },
                );
                assert_eq!(
                    r.assignments, reference.assignments,
                    "grid={grid} block={block} {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn centroids_close_to_sequential() {
        let data = gaussian_blobs(600, 4, 3, 1.2, 107);
        let init = random_init(&data.points, 3, 108);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let gpu = fit_gpu(
            &data.points,
            &cfg(),
            init,
            GpuStrategy::BlockReduction,
            GpuLaunch::default(),
        );
        for c in 0..3 {
            for j in 0..4 {
                assert!((gpu.centroids.get(c, j) - seq.centroids.get(c, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_point_single_cluster() {
        let p = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let r = fit_gpu(
            &p,
            &cfg(),
            p.clone(),
            GpuStrategy::Atomic,
            GpuLaunch::default(),
        );
        assert_eq!(r.assignments, vec![0]);
    }

    use peachy_data::Matrix;
}
