//! Clustering quality metrics and small shared kernels.

use peachy_data::Matrix;

/// Squared Euclidean distance between two points.
#[inline]
pub fn point_dist2(a: &[f64], b: &[f64]) -> f64 {
    peachy_data::matrix::squared_distance(a, b)
}

/// Index of the nearest centroid to `point` (ties break to the lowest
/// index — deterministic across all implementations).
#[inline]
pub fn nearest_centroid(point: &[f64], centroids: &Matrix) -> u32 {
    let mut best = 0u32;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = point_dist2(point, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

/// Inertia: total squared distance of each point to its assigned centroid
/// (the objective k-means minimizes).
pub fn inertia(points: &Matrix, centroids: &Matrix, assignments: &[u32]) -> f64 {
    assert_eq!(points.rows(), assignments.len());
    let mut acc = 0.0;
    for (i, &a) in assignments.iter().enumerate() {
        acc += point_dist2(points.row(i), centroids.row(a as usize));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_centroid_picks_closest() {
        let c = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        assert_eq!(nearest_centroid(&[1.0], &c), 0);
        assert_eq!(nearest_centroid(&[9.0], &c), 1);
    }

    #[test]
    fn nearest_centroid_tie_breaks_low_index() {
        let c = Matrix::from_rows(&[vec![-1.0], vec![1.0]]);
        assert_eq!(nearest_centroid(&[0.0], &c), 0);
    }

    #[test]
    fn inertia_zero_when_points_on_centroids() {
        let p = Matrix::from_rows(&[vec![0.0], vec![5.0]]);
        let c = p.clone();
        assert_eq!(inertia(&p, &c, &[0, 1]), 0.0);
    }

    #[test]
    fn inertia_sums_squares() {
        let p = Matrix::from_rows(&[vec![1.0], vec![4.0]]);
        let c = Matrix::from_rows(&[vec![0.0]]);
        assert_eq!(inertia(&p, &c, &[0, 0]), 1.0 + 16.0);
    }
}
