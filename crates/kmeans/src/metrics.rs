//! Clustering quality metrics, delegating to the shared kernel layer.
//!
//! All distance arithmetic lives in [`peachy_data::kernels`]; this module
//! keeps the k-means-flavoured names. Every k-means implementation in the
//! crate (sequential, strategy ladder, distributed, locality) routes its
//! assignment step through [`kernels::Candidates`], so assignments stay
//! bit-identical across implementations by construction.

use peachy_data::kernels;
use peachy_data::Matrix;

/// Squared Euclidean distance between two points (the exact scalar
/// kernel, [`kernels::dist2`]).
#[inline]
pub fn point_dist2(a: &[f64], b: &[f64]) -> f64 {
    kernels::dist2(a, b)
}

/// Index of the nearest centroid to `point` (ties break to the lowest
/// index — deterministic across all implementations).
///
/// One-shot convenience over [`kernels::Candidates`]; loops that query
/// many points against the same centroids should build the `Candidates`
/// once (hoisting the centroid norms) and call
/// [`kernels::Candidates::nearest`] — the result is identical.
#[inline]
pub fn nearest_centroid(point: &[f64], centroids: &Matrix) -> u32 {
    kernels::Candidates::new(centroids).nearest(point)
}

/// Inertia: total squared distance of each point to its assigned centroid
/// (the objective k-means minimizes). Rayon-parallel over row blocks with
/// a deterministic merge ([`kernels::assigned_dist2_sum`]).
pub fn inertia(points: &Matrix, centroids: &Matrix, assignments: &[u32]) -> f64 {
    kernels::assigned_dist2_sum(points, centroids, assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_centroid_picks_closest() {
        let c = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        assert_eq!(nearest_centroid(&[1.0], &c), 0);
        assert_eq!(nearest_centroid(&[9.0], &c), 1);
    }

    #[test]
    fn nearest_centroid_tie_breaks_low_index() {
        let c = Matrix::from_rows(&[vec![-1.0], vec![1.0]]);
        assert_eq!(nearest_centroid(&[0.0], &c), 0);
    }

    #[test]
    fn inertia_zero_when_points_on_centroids() {
        let p = Matrix::from_rows(&[vec![0.0], vec![5.0]]);
        let c = p.clone();
        assert_eq!(inertia(&p, &c, &[0, 1]), 0.0);
    }

    #[test]
    fn inertia_sums_squares() {
        let p = Matrix::from_rows(&[vec![1.0], vec![4.0]]);
        let c = Matrix::from_rows(&[vec![0.0]]);
        assert_eq!(inertia(&p, &c, &[0, 0]), 1.0 + 16.0);
    }
}
