//! The "dynamic buffers" alternative the assignment compares against.
//!
//! From §3: "Other educational proposals use dynamic buffers to store the
//! points in each cluster. This achieves better locality when traversing
//! buffers in the second step, but adds complexity." This module is that
//! design, implemented so the trade-off can actually be measured (see the
//! `E3_layout_ablation` bench): after the assignment phase, point indices
//! are *gathered per cluster*, and the update phase walks each cluster's
//! buffer sequentially.
//!
//! Results are identical to the static-layout sequential reference
//! whenever summation order per cluster matches — which it does, because
//! the gather preserves point order within each cluster.

use peachy_data::kernels::Candidates;
use peachy_data::Matrix;

use crate::config::{KMeansConfig, KMeansResult, Termination};
use crate::metrics::point_dist2;

/// Run k-means with per-cluster gather buffers (the locality layout).
pub fn fit_buffers(points: &Matrix, config: &KMeansConfig, init: Matrix) -> KMeansResult {
    let k = init.rows();
    assert!(k >= 1, "need at least one centroid");
    assert!(points.rows() >= 1, "need at least one point");
    assert_eq!(points.cols(), init.cols(), "dimensionality mismatch");
    let d = points.cols();
    let n = points.rows();

    let mut centroids = init;
    let mut assignments: Vec<u32> = vec![u32::MAX; n];
    // Reused gather buffers: one Vec of point indices per cluster.
    let mut buffers: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut iterations = 0;

    loop {
        // Phase 1: assignment, gathering indices into cluster buffers.
        for b in buffers.iter_mut() {
            b.clear();
        }
        let cand = Candidates::new(&centroids);
        let mut changes = 0usize;
        for i in 0..n {
            let a = cand.nearest(points.row(i));
            if assignments[i] != a {
                changes += 1;
                assignments[i] = a;
            }
            buffers[a as usize].push(i);
        }

        // Phase 2: per-cluster sequential traversal — the locality win.
        let mut shift: f64 = 0.0;
        let mut sum = vec![0.0f64; d];
        for (c, buffer) in buffers.iter().enumerate() {
            if buffer.is_empty() {
                continue;
            }
            sum.iter_mut().for_each(|s| *s = 0.0);
            for &i in buffer {
                for (s, &v) in sum.iter_mut().zip(points.row(i)) {
                    *s += v;
                }
            }
            let inv = 1.0 / buffer.len() as f64;
            let new: Vec<f64> = sum.iter().map(|s| s * inv).collect();
            shift = shift.max(point_dist2(&new, centroids.row(c)).sqrt());
            centroids.row_mut(c).copy_from_slice(&new);
        }
        iterations += 1;

        let termination = if changes <= config.min_changes {
            Some(Termination::FewChanges)
        } else if shift <= config.min_shift {
            Some(Termination::SmallShift)
        } else if iterations >= config.max_iters {
            Some(Termination::MaxIters)
        } else {
            None
        };
        if let Some(termination) = termination {
            return KMeansResult {
                centroids,
                assignments,
                iterations,
                termination,
                last_changes: changes,
                last_shift: shift,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::seq::fit_seq;
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn identical_to_static_layout() {
        // Same per-cluster summation order → bit-identical results.
        let data = gaussian_blobs(2_000, 3, 5, 1.2, 81);
        let init = random_init(&data.points, 5, 82);
        let cfg = KMeansConfig::default();
        let a = fit_seq(&data.points, &cfg, init.clone());
        let b = fit_buffers(&data.points, &cfg, init);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids, "bit-identical expected");
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.termination, b.termination);
    }

    #[test]
    fn empty_cluster_kept() {
        let p = Matrix::from_rows(&[vec![0.0], vec![0.5]]);
        let init = Matrix::from_rows(&[vec![0.0], vec![50.0]]);
        let r = fit_buffers(&p, &KMeansConfig::default(), init);
        assert_eq!(r.centroids.get(1, 0), 50.0);
    }

    #[test]
    fn single_iteration_cap() {
        let data = gaussian_blobs(200, 2, 3, 2.0, 83);
        let init = random_init(&data.points, 3, 84);
        let r = fit_buffers(
            &data.points,
            &KMeansConfig {
                max_iters: 1,
                min_changes: 0,
                min_shift: 0.0,
            },
            init,
        );
        assert_eq!(r.iterations, 1);
    }
}
