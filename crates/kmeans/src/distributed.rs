//! Distributed-memory k-means on [`peachy_cluster`] — the MPI leg of §3.
//!
//! The structure follows the assignment's guidance: "the data structures
//! should be distributed; the initial data and results can be communicated
//! with collective communication operations" and the core insight that "a
//! distributed reduction is needed in any case":
//!
//! * the root scatters point blocks (`scatter`) and broadcasts the initial
//!   centroids (`broadcast`);
//! * each iteration, every rank assigns its local points and computes
//!   local `counts`/`sums`/`changes`;
//! * one `allreduce` combines the accumulators, after which every rank
//!   deterministically computes the same new centroids (replicated update —
//!   no second broadcast needed);
//! * at the end, the root gathers the assignment blocks (`gather`).

//!
//! When ranks can die, [`fit_distributed_resilient`] wraps the same SPMD
//! body in a retry loop: a failed attempt (any rank lost mid-collective
//! aborts the whole job cleanly — no hangs) is re-submitted on the
//! surviving rank count, and because assignments are rank-count invariant
//! the recovered answer is bit-identical to the fault-free run.

use peachy_cluster::{
    dist::block_range, Cluster, CommStats, FaultPlan, RankError, RetryPolicy, Shared,
};
use peachy_data::kernels::Candidates;
use peachy_data::Matrix;

use crate::config::{KMeansConfig, KMeansResult, Termination};
use crate::metrics::point_dist2;

/// Run k-means on `ranks` simulated distributed-memory ranks.
///
/// Semantically equivalent to the sequential reference; floating-point
/// sums are combined in rank order inside the tree allreduce, so centroids
/// may differ from the sequential run by rounding only.
pub fn fit_distributed(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    ranks: usize,
) -> KMeansResult {
    fit_on_cluster(points, config, &init, ranks, &FaultPlan::none(), None).unwrap_or_else(|errors| {
        let primary = errors
            .iter()
            .find(|e| e.is_primary())
            .unwrap_or(&errors[0]);
        panic!("{primary}");
    })
}

/// One supervised SPMD attempt under a chaos plan: `Ok` only if every
/// rank completed, otherwise all per-rank failures. Counters (if given)
/// are bumped at the root only, so totals are per-job, not per-rank.
pub(crate) fn fit_on_cluster(
    points: &Matrix,
    config: &KMeansConfig,
    init: &Matrix,
    ranks: usize,
    plan: &FaultPlan,
    stats: Option<&CommStats>,
) -> Result<KMeansResult, Vec<RankError>> {
    let k = init.rows();
    assert!(k >= 1, "need at least one centroid");
    assert!(points.rows() >= 1, "need at least one point");
    assert_eq!(points.cols(), init.cols(), "dimensionality mismatch");
    assert!(ranks >= 1, "need at least one rank");
    let d = points.cols();
    let n = points.rows();

    let results = Cluster::run_with_plan(ranks, plan, |comm| {
        let rank = comm.rank();
        let size = comm.size();

        // Distribute: root scatters point blocks, broadcasts centroids.
        // block_range is total over ranks > n — trailing ranks get empty
        // chunks — which is why the free function is used here, not the
        // clipped `Block` type.
        let chunks: Option<Vec<Vec<f64>>> = (rank == 0).then(|| {
            (0..size)
                .map(|r| {
                    let range = block_range(n, size, r);
                    points.as_slice()[range.start * d..range.end * d].to_vec()
                })
                .collect()
        });
        let local_flat: Vec<f64> = comm.scatter(0, chunks);
        if rank == 0 {
            if let Some(s) = stats {
                s.add_scattered((n * d) as u64);
                // Scattered points + broadcast centroids, 8 bytes per f64.
                s.add_collective_bytes((n * d * 8 + k * d * 8) as u64);
            }
        }
        let local_n = local_flat.len() / d.max(1);
        let local = Matrix::from_vec(local_n, d, local_flat);
        // Zero-copy broadcast: the tree fan-out forwards one `Arc` per
        // edge instead of deep-cloning the centroid block per child; each
        // rank then takes its own mutable copy exactly once.
        let centroids_shared = comm.broadcast_shared(
            0,
            Shared::new(if rank == 0 {
                init.as_slice().to_vec()
            } else {
                Vec::new()
            }),
        );
        let mut centroids = Matrix::from_vec(k, d, (*centroids_shared).clone());
        drop(centroids_shared);

        let mut assignments = vec![u32::MAX; local_n];
        let mut iterations = 0usize;
        let (termination, last_changes, last_shift) = loop {
            // Local assignment + local accumulators, via the same shared
            // kernel as every other implementation (norms hoisted once per
            // iteration → identical assignments to the sequential run).
            let cand = Candidates::new(&centroids);
            let mut changes = 0u64;
            let mut counts = vec![0u64; k];
            let mut sums = vec![0.0f64; k * d];
            for i in 0..local_n {
                let row = local.row(i);
                let a = cand.nearest(row);
                if assignments[i] != a {
                    changes += 1;
                    assignments[i] = a;
                }
                counts[a as usize] += 1;
                let s = &mut sums[a as usize * d..(a as usize + 1) * d];
                for (acc, &v) in s.iter_mut().zip(row) {
                    *acc += v;
                }
            }

            // The distributed reduction: one allreduce fuses all three
            // accumulators (changes, counts, sums). The shared variant
            // broadcasts the combined total as one `Arc` per tree edge —
            // the accumulators are only read afterwards, so no rank needs
            // its own copy.
            let reduced =
                comm.allreduce_shared((changes, counts, sums), |(c1, n1, s1), (c2, n2, s2)| {
                    (
                        c1 + c2,
                        n1.iter().zip(&n2).map(|(a, b)| a + b).collect(),
                        s1.iter().zip(&s2).map(|(a, b)| a + b).collect(),
                    )
                });
            let (changes, counts, sums) = (reduced.0, &reduced.1, &reduced.2);
            if rank == 0 {
                if let Some(s) = stats {
                    // One fused allreduce payload: changes + counts + sums.
                    s.add_collective_bytes((8 * (1 + k + k * d)) as u64);
                }
            }

            // Replicated centroid update: every rank computes the same thing.
            let mut shift: f64 = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let new: Vec<f64> = sums[c * d..(c + 1) * d].iter().map(|s| s * inv).collect();
                shift = shift.max(point_dist2(&new, centroids.row(c)).sqrt());
                centroids.row_mut(c).copy_from_slice(&new);
            }
            iterations += 1;

            if changes as usize <= config.min_changes {
                break (Termination::FewChanges, changes as usize, shift);
            } else if shift <= config.min_shift {
                break (Termination::SmallShift, changes as usize, shift);
            } else if iterations >= config.max_iters {
                break (Termination::MaxIters, changes as usize, shift);
            }
        };

        // Collect results at the root.
        let gathered = comm.gather(0, assignments);
        // Measured bytes: every rank folds what its transport actually
        // sent into one total, charged once at the root (the accounting
        // allreduce itself is excluded — it runs after the measurement).
        let job_bytes = comm.allreduce(comm.bytes_sent(), |a, b| a + b);
        if rank == 0 {
            if let Some(s) = stats {
                s.add_gathered(n as u64);
                s.add_collective_bytes((n * 4) as u64); // u32 assignments
                s.add_bytes(job_bytes);
            }
        }
        gathered.map(|blocks| KMeansResult {
            centroids: centroids.clone(),
            assignments: blocks.concat(),
            iterations,
            termination,
            last_changes,
            last_shift,
        })
    });

    let mut errors = Vec::new();
    let mut root: Option<KMeansResult> = None;
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(opt) => {
                if rank == 0 {
                    root = opt;
                }
            }
            Err(e) => errors.push(e),
        }
    }
    if errors.is_empty() {
        Ok(root.expect("root assembles the result"))
    } else {
        Err(errors)
    }
}

/// What a resilient distributed fit reports alongside the result.
#[derive(Debug, Clone)]
pub struct ResilientFit {
    /// The clustering — bit-identical assignments to a fault-free run.
    pub result: KMeansResult,
    /// Cluster attempts used (1 = no failures).
    pub attempts: u32,
    /// Rank count of the successful attempt (shrinks when nodes are lost).
    pub final_ranks: usize,
}

/// Failure-aware distributed k-means: run [`fit_distributed`]'s SPMD body
/// under chaos `plan`; if the attempt fails (a rank panicked or was
/// killed, aborting the whole job cleanly via peer-death cascade), resubmit
/// on the surviving rank count — the failed nodes are excluded, mirroring
/// how a scheduler restarts an MPI job without the crashed hosts. Bounded
/// by `policy.max_attempts`, with the policy's backoff between attempts.
///
/// Because assignments are rank-count invariant (a property the test suite
/// pins down), the recovered clustering is **bit-identical** to the
/// fault-free run.
pub fn fit_distributed_resilient(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    ranks: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<ResilientFit, Vec<RankError>> {
    assert!(policy.max_attempts >= 1, "max_attempts must be >= 1");
    let mut ranks_now = ranks;
    let mut plan_now = plan.clone();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match fit_on_cluster(points, config, &init, ranks_now, &plan_now, None) {
            Ok(result) => {
                return Ok(ResilientFit {
                    result,
                    attempts: attempt,
                    final_ranks: ranks_now,
                })
            }
            Err(errors) => {
                if attempt >= policy.max_attempts {
                    return Err(errors);
                }
                // Exclude the primarily-failed nodes from the resubmission;
                // peer-death casualties are healthy nodes and keep running.
                let lost = errors.iter().filter(|e| e.is_primary()).count().max(1);
                ranks_now = ranks_now.saturating_sub(lost).max(1);
                plan_now = FaultPlan::none();
                policy.sleep_before_retry(attempt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::seq::fit_seq;
    use peachy_data::synth::gaussian_blobs;

    fn cfg() -> KMeansConfig {
        KMeansConfig {
            max_iters: 50,
            min_changes: 0,
            min_shift: 1e-12,
        }
    }

    #[test]
    fn matches_sequential_for_all_rank_counts() {
        let data = gaussian_blobs(1_200, 3, 4, 1.0, 19);
        let init = random_init(&data.points, 4, 20);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        for ranks in [1, 2, 3, 5, 8] {
            let dist = fit_distributed(&data.points, &cfg(), init.clone(), ranks);
            assert_eq!(dist.assignments, seq.assignments, "ranks={ranks}");
            assert_eq!(dist.iterations, seq.iterations, "ranks={ranks}");
            for c in 0..4 {
                for j in 0..3 {
                    assert!(
                        (dist.centroids.get(c, j) - seq.centroids.get(c, j)).abs() < 1e-9,
                        "ranks={ranks} centroid ({c},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn more_ranks_than_points() {
        let data = gaussian_blobs(3, 2, 2, 0.5, 21);
        let init = random_init(&data.points, 2, 22);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let dist = fit_distributed(&data.points, &cfg(), init, 6);
        assert_eq!(dist.assignments, seq.assignments);
    }

    #[test]
    fn resilient_fit_single_attempt_when_fault_free() {
        let data = gaussian_blobs(300, 2, 3, 0.8, 31);
        let init = random_init(&data.points, 3, 32);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let fit = fit_distributed_resilient(
            &data.points,
            &cfg(),
            init,
            4,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .expect("no faults injected");
        assert_eq!(fit.attempts, 1);
        assert_eq!(fit.final_ranks, 4);
        assert_eq!(fit.result.assignments, seq.assignments);
    }

    #[test]
    fn resilient_fit_recovers_bit_identically_after_rank_death() {
        let data = gaussian_blobs(400, 3, 3, 1.0, 33);
        let init = random_init(&data.points, 3, 34);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        for seed in [1, 2, 3] {
            // Rank 2 dies mid-collective; the whole attempt aborts cleanly
            // and the resubmission runs on the survivors.
            let plan = FaultPlan::new(seed).kill(2, 5);
            let fit = fit_distributed_resilient(
                &data.points,
                &cfg(),
                init.clone(),
                4,
                &plan,
                &RetryPolicy::default(),
            )
            .expect("retry succeeds on survivors");
            assert_eq!(fit.attempts, 2, "seed {seed}");
            assert_eq!(fit.final_ranks, 3, "seed {seed}: crashed node excluded");
            assert_eq!(
                fit.result.assignments, seq.assignments,
                "seed {seed}: bit-identical to the fault-free clustering"
            );
        }
    }

    #[test]
    fn resilient_fit_reports_failures_when_budget_exhausted() {
        let data = gaussian_blobs(60, 2, 2, 0.5, 35);
        let init = random_init(&data.points, 2, 36);
        let plan = FaultPlan::new(1).kill(1, 0);
        let errors = fit_distributed_resilient(
            &data.points,
            &cfg(),
            init,
            3,
            &plan,
            &RetryPolicy {
                max_attempts: 1,
                backoff: std::time::Duration::ZERO,
            },
        )
        .expect_err("single attempt, scheduled kill");
        assert!(errors.iter().any(|e| e.rank == 1 && e.is_primary()));
    }

    #[test]
    fn assignments_in_original_point_order() {
        // Gathered blocks must reassemble in rank (and therefore point) order.
        let data = gaussian_blobs(100, 2, 2, 0.2, 23);
        let init = random_init(&data.points, 2, 24);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let dist = fit_distributed(&data.points, &cfg(), init, 4);
        assert_eq!(dist.assignments.len(), 100);
        assert_eq!(dist.assignments, seq.assignments);
    }
}
