//! Distributed-memory k-means on [`peachy_cluster`] — the MPI leg of §3.
//!
//! The structure follows the assignment's guidance: "the data structures
//! should be distributed; the initial data and results can be communicated
//! with collective communication operations" and the core insight that "a
//! distributed reduction is needed in any case":
//!
//! * the root scatters point blocks (`scatter`) and broadcasts the initial
//!   centroids (`broadcast`);
//! * each iteration, every rank assigns its local points and computes
//!   local `counts`/`sums`/`changes`;
//! * one `allreduce` combines the accumulators, after which every rank
//!   deterministically computes the same new centroids (replicated update —
//!   no second broadcast needed);
//! * at the end, the root gathers the assignment blocks (`gather`).

use peachy_cluster::Cluster;
use peachy_data::kernels::Candidates;
use peachy_data::Matrix;

use crate::config::{KMeansConfig, KMeansResult, Termination};
use crate::metrics::point_dist2;

/// Run k-means on `ranks` simulated distributed-memory ranks.
///
/// Semantically equivalent to the sequential reference; floating-point
/// sums are combined in rank order inside the tree allreduce, so centroids
/// may differ from the sequential run by rounding only.
pub fn fit_distributed(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    ranks: usize,
) -> KMeansResult {
    let k = init.rows();
    assert!(k >= 1, "need at least one centroid");
    assert!(points.rows() >= 1, "need at least one point");
    assert_eq!(points.cols(), init.cols(), "dimensionality mismatch");
    assert!(ranks >= 1, "need at least one rank");
    let d = points.cols();
    let n = points.rows();

    let mut results = Cluster::run(ranks, |comm| {
        let rank = comm.rank();
        let size = comm.size();

        // Distribute: root scatters point blocks, broadcasts centroids.
        let chunks: Option<Vec<Vec<f64>>> = (rank == 0).then(|| {
            (0..size)
                .map(|r| {
                    let range = peachy_mapreduce_block(n, size, r);
                    points.as_slice()[range.start * d..range.end * d].to_vec()
                })
                .collect()
        });
        let local_flat: Vec<f64> = comm.scatter(0, chunks);
        let local_n = local_flat.len() / d.max(1);
        let local = Matrix::from_vec(local_n, d, local_flat);
        let mut centroids_flat: Vec<f64> = if rank == 0 {
            init.as_slice().to_vec()
        } else {
            Vec::new()
        };
        centroids_flat = comm.broadcast(0, centroids_flat);
        let mut centroids = Matrix::from_vec(k, d, centroids_flat);

        let mut assignments = vec![u32::MAX; local_n];
        let mut iterations = 0usize;
        let (termination, last_changes, last_shift) = loop {
            // Local assignment + local accumulators, via the same shared
            // kernel as every other implementation (norms hoisted once per
            // iteration → identical assignments to the sequential run).
            let cand = Candidates::new(&centroids);
            let mut changes = 0u64;
            let mut counts = vec![0u64; k];
            let mut sums = vec![0.0f64; k * d];
            for i in 0..local_n {
                let row = local.row(i);
                let a = cand.nearest(row);
                if assignments[i] != a {
                    changes += 1;
                    assignments[i] = a;
                }
                counts[a as usize] += 1;
                let s = &mut sums[a as usize * d..(a as usize + 1) * d];
                for (acc, &v) in s.iter_mut().zip(row) {
                    *acc += v;
                }
            }

            // The distributed reduction: one allreduce fuses all three
            // accumulators (changes, counts, sums).
            let (changes, counts, sums) =
                comm.allreduce((changes, counts, sums), |(c1, n1, s1), (c2, n2, s2)| {
                    (
                        c1 + c2,
                        n1.iter().zip(&n2).map(|(a, b)| a + b).collect(),
                        s1.iter().zip(&s2).map(|(a, b)| a + b).collect(),
                    )
                });

            // Replicated centroid update: every rank computes the same thing.
            let mut shift: f64 = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let new: Vec<f64> = sums[c * d..(c + 1) * d].iter().map(|s| s * inv).collect();
                shift = shift.max(point_dist2(&new, centroids.row(c)).sqrt());
                centroids.row_mut(c).copy_from_slice(&new);
            }
            iterations += 1;

            if changes as usize <= config.min_changes {
                break (Termination::FewChanges, changes as usize, shift);
            } else if shift <= config.min_shift {
                break (Termination::SmallShift, changes as usize, shift);
            } else if iterations >= config.max_iters {
                break (Termination::MaxIters, changes as usize, shift);
            }
        };

        // Collect results at the root.
        let gathered = comm.gather(0, assignments);
        gathered.map(|blocks| KMeansResult {
            centroids: centroids.clone(),
            assignments: blocks.concat(),
            iterations,
            termination,
            last_changes,
            last_shift,
        })
    });

    results.swap_remove(0).expect("root assembles the result")
}

/// Balanced block range (same as the MapReduce engine's distribution —
/// duplicated here to keep this crate independent of peachy-mapreduce).
fn peachy_mapreduce_block(n: usize, size: usize, rank: usize) -> std::ops::Range<usize> {
    let base = n / size;
    let extra = n % size;
    let start = rank * base + rank.min(extra);
    start..(start + base + usize::from(rank < extra))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::seq::fit_seq;
    use peachy_data::synth::gaussian_blobs;

    fn cfg() -> KMeansConfig {
        KMeansConfig {
            max_iters: 50,
            min_changes: 0,
            min_shift: 1e-12,
        }
    }

    #[test]
    fn matches_sequential_for_all_rank_counts() {
        let data = gaussian_blobs(1_200, 3, 4, 1.0, 19);
        let init = random_init(&data.points, 4, 20);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        for ranks in [1, 2, 3, 5, 8] {
            let dist = fit_distributed(&data.points, &cfg(), init.clone(), ranks);
            assert_eq!(dist.assignments, seq.assignments, "ranks={ranks}");
            assert_eq!(dist.iterations, seq.iterations, "ranks={ranks}");
            for c in 0..4 {
                for j in 0..3 {
                    assert!(
                        (dist.centroids.get(c, j) - seq.centroids.get(c, j)).abs() < 1e-9,
                        "ranks={ranks} centroid ({c},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn more_ranks_than_points() {
        let data = gaussian_blobs(3, 2, 2, 0.5, 21);
        let init = random_init(&data.points, 2, 22);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let dist = fit_distributed(&data.points, &cfg(), init, 6);
        assert_eq!(dist.assignments, seq.assignments);
    }

    #[test]
    fn assignments_in_original_point_order() {
        // Gathered blocks must reassemble in rank (and therefore point) order.
        let data = gaussian_blobs(100, 2, 2, 0.2, 23);
        let init = random_init(&data.points, 2, 24);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let dist = fit_distributed(&data.points, &cfg(), init, 4);
        assert_eq!(dist.assignments.len(), 100);
        assert_eq!(dist.assignments, seq.assignments);
    }
}
