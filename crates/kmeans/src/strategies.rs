//! The shared-memory parallelization-strategy ladder.
//!
//! All strategies parallelize the same two phases and differ only in how
//! they resolve the races the assignment asks students to find:
//!
//! * the **write race** on the per-point assignment array (benign once
//!   points are partitioned — each point is written by exactly one task);
//! * the **update races** on the shared `changes` counter and the
//!   per-cluster `counts`/`sums` accumulators.
//!
//! [`Strategy::Critical`] serializes every accumulator update through one
//! mutex (stage 2 of the ladder); [`Strategy::Atomic`] replaces the lock
//! with atomic fetch-adds and CAS loops on bit-cast `f64`s (stage 3);
//! [`Strategy::Reduction`] gives each chunk its own private accumulators
//! and merges them after the parallel region (stage 4) — and, because the
//! chunk decomposition is fixed and the merge is ordered, its output is
//! **bit-identical regardless of thread count**, unlike the other two whose
//! floating-point sums depend on interleaving (by about 1 ulp).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use peachy_cluster::dist::EvenBlocks;
use peachy_cluster::{CommStats, Executor};
use peachy_data::kernels::Candidates;
use peachy_data::Matrix;
use rayon::prelude::*;

use crate::config::{KMeansConfig, KMeansResult, Termination};
use crate::metrics::point_dist2;

/// Which race-resolution strategy to use for the shared accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One mutex (critical region) around every accumulator update.
    Critical,
    /// Lock-free atomic updates (CAS loop for the f64 sums).
    Atomic,
    /// Per-chunk private accumulators merged deterministically.
    Reduction,
}

/// Default decomposition width for the reduction strategy: independent of
/// the rayon pool size, so results do not depend on the number of threads.
/// The actual chunk geometry is derived from an [`EvenBlocks`] distribution
/// of this width, never hardcoded in the loop.
pub(crate) const REDUCTION_CHUNKS: usize = 64;

/// Accumulators produced by one iteration's phases.
struct IterStats {
    changes: usize,
    counts: Vec<u64>,
    sums: Vec<f64>,
}

impl peachy_cluster::ByteSized for IterStats {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<usize>() + 8 * (self.counts.len() + self.sums.len())
    }
}

/// Run parallel k-means from the given initial centroids.
pub fn fit(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    strategy: Strategy,
) -> KMeansResult {
    fit_impl(points, config, init, strategy, REDUCTION_CHUNKS, None)
}

/// [`fit`] with an explicit reduction decomposition width and optional
/// communication counters — the entry point the executor seam
/// ([`crate::executor::fit_with`]) drives.
pub(crate) fn fit_impl(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    strategy: Strategy,
    reduction_chunks: usize,
    stats: Option<&CommStats>,
) -> KMeansResult {
    let k = init.rows();
    assert!(k >= 1, "need at least one centroid");
    assert!(points.rows() >= 1, "need at least one point");
    assert_eq!(points.cols(), init.cols(), "dimensionality mismatch");
    assert!(config.max_iters >= 1, "need at least one iteration");
    let d = points.cols();
    let n = points.rows();

    let mut centroids = init;
    let mut assignments: Vec<u32> = vec![u32::MAX; n];
    let mut iterations = 0;

    loop {
        // Hoist the centroid norms once per iteration; every strategy
        // shares the same kernel, so assignments are identical across the
        // whole ladder (and the sequential reference) by construction.
        let cand = Candidates::new(&centroids);
        let iter_stats = match strategy {
            Strategy::Critical => iter_critical(points, &cand, &mut assignments),
            Strategy::Atomic => iter_atomic(points, &cand, &mut assignments),
            Strategy::Reduction => {
                iter_reduction(points, &cand, &mut assignments, reduction_chunks, stats)
            }
        };
        drop(cand);

        let mut shift: f64 = 0.0;
        for c in 0..k {
            if iter_stats.counts[c] == 0 {
                continue;
            }
            let inv = 1.0 / iter_stats.counts[c] as f64;
            let new: Vec<f64> = iter_stats.sums[c * d..(c + 1) * d]
                .iter()
                .map(|s| s * inv)
                .collect();
            shift = shift.max(point_dist2(&new, centroids.row(c)).sqrt());
            centroids.row_mut(c).copy_from_slice(&new);
        }
        iterations += 1;

        let termination = if iter_stats.changes <= config.min_changes {
            Some(Termination::FewChanges)
        } else if shift <= config.min_shift {
            Some(Termination::SmallShift)
        } else if iterations >= config.max_iters {
            Some(Termination::MaxIters)
        } else {
            None
        };
        if let Some(termination) = termination {
            return KMeansResult {
                centroids,
                assignments,
                iterations,
                termination,
                last_changes: iter_stats.changes,
                last_shift: shift,
            };
        }
    }
}

/// Stage 2: every shared update inside a critical region.
fn iter_critical(points: &Matrix, cand: &Candidates<'_>, assignments: &mut [u32]) -> IterStats {
    let k = cand.len();
    let d = points.cols();
    let shared = Mutex::new((0usize, vec![0u64; k], vec![0.0f64; k * d]));
    assignments
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, slot)| {
            let row = points.row(i);
            let a = cand.nearest(row);
            let changed = *slot != a;
            *slot = a;
            // The critical region: counter, count and coordinate sums together.
            let mut guard = shared.lock();
            if changed {
                guard.0 += 1;
            }
            guard.1[a as usize] += 1;
            let s = &mut guard.2[a as usize * d..(a as usize + 1) * d];
            for (acc, &v) in s.iter_mut().zip(row) {
                *acc += v;
            }
        });
    let (changes, counts, sums) = shared.into_inner();
    IterStats {
        changes,
        counts,
        sums,
    }
}

/// Atomic f64 add by CAS on the bit pattern — the "substitute critical
/// regions with atomic operations" stage.
#[inline]
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Stage 3: atomics instead of locks.
fn iter_atomic(points: &Matrix, cand: &Candidates<'_>, assignments: &mut [u32]) -> IterStats {
    let k = cand.len();
    let d = points.cols();
    let changes = AtomicUsize::new(0);
    let counts: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let sums: Vec<AtomicU64> = (0..k * d)
        .map(|_| AtomicU64::new(0.0f64.to_bits()))
        .collect();
    assignments
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, slot)| {
            let row = points.row(i);
            let a = cand.nearest(row);
            if *slot != a {
                changes.fetch_add(1, Ordering::Relaxed);
            }
            *slot = a;
            counts[a as usize].fetch_add(1, Ordering::Relaxed);
            for (j, &v) in row.iter().enumerate() {
                atomic_f64_add(&sums[a as usize * d + j], v);
            }
        });
    IterStats {
        changes: changes.into_inner(),
        counts: counts.into_iter().map(AtomicU64::into_inner).collect(),
        sums: sums
            .into_iter()
            .map(|c| f64::from_bits(c.into_inner()))
            .collect(),
    }
}

/// Stage 4: reduction over a fixed [`EvenBlocks`] decomposition, merged in
/// part order through the executor seam.
fn iter_reduction(
    points: &Matrix,
    cand: &Candidates<'_>,
    assignments: &mut [u32],
    chunks: usize,
    stats: Option<&CommStats>,
) -> IterStats {
    let k = cand.len();
    let d = points.cols();
    let n = points.rows();
    // The decomposition comes from the distribution, not ad-hoc chunk
    // math: EvenBlocks reproduces the historical `par_chunks_mut` grouping
    // exactly, so the ordered merge below (and thus every partial-sum
    // grouping) is bit-identical to the original loop.
    let dist = EvenBlocks::new(n, chunks);
    let exec = Executor::Rayon { chunks };
    // Each part owns a disjoint slice of the assignment array and its own
    // accumulators; no shared mutable state exists inside the parallel region.
    let kernel = |_part: usize, range: std::ops::Range<usize>, slots: &mut [u32]| {
        let base = range.start;
        let mut changes = 0usize;
        let mut counts = vec![0u64; k];
        let mut sums = vec![0.0f64; k * d];
        for (off, slot) in slots.iter_mut().enumerate() {
            let row = points.row(base + off);
            let a = cand.nearest(row);
            if *slot != a {
                changes += 1;
            }
            *slot = a;
            counts[a as usize] += 1;
            let s = &mut sums[a as usize * d..(a as usize + 1) * d];
            for (acc, &v) in s.iter_mut().zip(row) {
                *acc += v;
            }
        }
        IterStats {
            changes,
            counts,
            sums,
        }
    };
    let partials: Vec<IterStats> = match stats {
        Some(s) => exec.map_parts_mut_counted(&dist, assignments, s, kernel),
        None => exec.map_parts_mut(&dist, assignments, kernel),
    };
    // Ordered, sequential merge: deterministic whatever the pool size.
    let mut total = IterStats {
        changes: 0,
        counts: vec![0; k],
        sums: vec![0.0; k * d],
    };
    for p in partials {
        total.changes += p.changes;
        for (t, v) in total.counts.iter_mut().zip(p.counts) {
            *t += v;
        }
        for (t, v) in total.sums.iter_mut().zip(p.sums) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::seq::fit_seq;
    use peachy_data::synth::gaussian_blobs;

    fn cfg() -> KMeansConfig {
        KMeansConfig {
            max_iters: 50,
            min_changes: 0,
            min_shift: 1e-12,
        }
    }

    fn assert_matches_seq(strategy: Strategy) {
        let data = gaussian_blobs(2_000, 4, 5, 1.0, 33);
        let init = random_init(&data.points, 5, 44);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let par = fit(&data.points, &cfg(), init, strategy);
        assert_eq!(par.assignments, seq.assignments, "{strategy:?} assignments");
        assert_eq!(par.iterations, seq.iterations, "{strategy:?} iterations");
        assert_eq!(par.termination, seq.termination, "{strategy:?} termination");
        for c in 0..5 {
            for j in 0..4 {
                let a = par.centroids.get(c, j);
                let b = seq.centroids.get(c, j);
                assert!(
                    (a - b).abs() < 1e-9,
                    "{strategy:?} centroid ({c},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn critical_matches_sequential() {
        assert_matches_seq(Strategy::Critical);
    }

    #[test]
    fn atomic_matches_sequential() {
        assert_matches_seq(Strategy::Atomic);
    }

    #[test]
    fn reduction_matches_sequential() {
        assert_matches_seq(Strategy::Reduction);
    }

    #[test]
    fn reduction_bit_identical_across_thread_counts() {
        let data = gaussian_blobs(3_000, 3, 4, 1.5, 55);
        let init = random_init(&data.points, 4, 66);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let init = init.clone();
            let points = &data.points;
            pool.install(move || fit(points, &cfg(), init, Strategy::Reduction))
        };
        let r1 = run(1);
        let r4 = run(4);
        assert_eq!(r1.assignments, r4.assignments);
        assert_eq!(
            r1.centroids, r4.centroids,
            "bit-identical centroids required"
        );
        assert_eq!(r1.iterations, r4.iterations);
    }

    #[test]
    fn reduction_decomposition_matches_legacy_chunking() {
        // Regression: the EvenBlocks-derived geometry must equal the old
        // inline rule `chunk = n.div_ceil(REDUCTION_CHUNKS).max(1)` fed to
        // `par_chunks_mut` — same chunk count, same ranges — for any n.
        for n in [1usize, 7, 63, 64, 65, 100, 1000, 4096, 5000] {
            let chunk = n.div_ceil(REDUCTION_CHUNKS).max(1);
            let legacy: Vec<std::ops::Range<usize>> = (0..n.div_ceil(chunk))
                .map(|ci| ci * chunk..((ci + 1) * chunk).min(n))
                .collect();
            let dist = EvenBlocks::new(n, REDUCTION_CHUNKS);
            assert_eq!(dist.chunk_len(), chunk, "n = {n}");
            let new: Vec<std::ops::Range<usize>> =
                (0..dist.parts()).map(|p| dist.local_range(p)).collect();
            assert_eq!(new, legacy, "n = {n}");
        }
    }

    #[test]
    fn reduction_bit_identical_to_legacy_iteration() {
        // One full iteration through the executor vs a verbatim copy of
        // the pre-refactor par_chunks_mut loop: assignments and every
        // accumulator must match bit for bit.
        let data = gaussian_blobs(1_777, 3, 4, 1.2, 91);
        let init = random_init(&data.points, 4, 92);
        let points = &data.points;
        let cand = Candidates::new(&init);
        let (k, d, n) = (4usize, 3usize, points.rows());

        let mut new_assign = vec![u32::MAX; n];
        let new_stats = iter_reduction(points, &cand, &mut new_assign, REDUCTION_CHUNKS, None);

        let mut old_assign = vec![u32::MAX; n];
        let chunk = n.div_ceil(REDUCTION_CHUNKS).max(1);
        let partials: Vec<IterStats> = old_assign
            .par_chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slots)| {
                let base = ci * chunk;
                let mut changes = 0usize;
                let mut counts = vec![0u64; k];
                let mut sums = vec![0.0f64; k * d];
                for (off, slot) in slots.iter_mut().enumerate() {
                    let row = points.row(base + off);
                    let a = cand.nearest(row);
                    if *slot != a {
                        changes += 1;
                    }
                    *slot = a;
                    counts[a as usize] += 1;
                    let s = &mut sums[a as usize * d..(a as usize + 1) * d];
                    for (acc, &v) in s.iter_mut().zip(row) {
                        *acc += v;
                    }
                }
                IterStats {
                    changes,
                    counts,
                    sums,
                }
            })
            .collect();
        let mut old_stats = IterStats {
            changes: 0,
            counts: vec![0; k],
            sums: vec![0.0; k * d],
        };
        for p in partials {
            old_stats.changes += p.changes;
            for (t, v) in old_stats.counts.iter_mut().zip(p.counts) {
                *t += v;
            }
            for (t, v) in old_stats.sums.iter_mut().zip(p.sums) {
                *t += v;
            }
        }

        assert_eq!(new_assign, old_assign);
        assert_eq!(new_stats.changes, old_stats.changes);
        assert_eq!(new_stats.counts, old_stats.counts);
        assert_eq!(
            new_stats.sums.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            old_stats.sums.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "partial-sum grouping must be preserved bit for bit"
        );
    }

    #[test]
    fn atomic_f64_add_accumulates() {
        let cell = AtomicU64::new(0.0f64.to_bits());
        (0..1000)
            .into_par_iter()
            .for_each(|_| atomic_f64_add(&cell, 0.5));
        assert_eq!(f64::from_bits(cell.into_inner()), 500.0);
    }

    #[test]
    fn single_point_single_cluster() {
        let p = Matrix::from_rows(&[vec![3.0, 4.0]]);
        for s in [Strategy::Critical, Strategy::Atomic, Strategy::Reduction] {
            let r = fit(&p, &cfg(), p.clone(), s);
            assert_eq!(r.assignments, vec![0]);
            assert_eq!(r.centroids.row(0), &[3.0, 4.0]);
        }
    }

    #[test]
    fn strategies_agree_with_each_other() {
        let data = gaussian_blobs(1_000, 2, 3, 0.8, 77);
        let init = random_init(&data.points, 3, 88);
        let a = fit(&data.points, &cfg(), init.clone(), Strategy::Critical);
        let b = fit(&data.points, &cfg(), init.clone(), Strategy::Atomic);
        let c = fit(&data.points, &cfg(), init, Strategy::Reduction);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(b.assignments, c.assignments);
    }

    use peachy_data::Matrix;
}
