//! The shared-memory parallelization-strategy ladder.
//!
//! All strategies parallelize the same two phases and differ only in how
//! they resolve the races the assignment asks students to find:
//!
//! * the **write race** on the per-point assignment array (benign once
//!   points are partitioned — each point is written by exactly one task);
//! * the **update races** on the shared `changes` counter and the
//!   per-cluster `counts`/`sums` accumulators.
//!
//! [`Strategy::Critical`] serializes every accumulator update through one
//! mutex (stage 2 of the ladder); [`Strategy::Atomic`] replaces the lock
//! with atomic fetch-adds and CAS loops on bit-cast `f64`s (stage 3);
//! [`Strategy::Reduction`] gives each chunk its own private accumulators
//! and merges them after the parallel region (stage 4) — and, because the
//! chunk decomposition is fixed and the merge is ordered, its output is
//! **bit-identical regardless of thread count**, unlike the other two whose
//! floating-point sums depend on interleaving (by about 1 ulp).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use peachy_data::kernels::Candidates;
use peachy_data::Matrix;
use rayon::prelude::*;

use crate::config::{KMeansConfig, KMeansResult, Termination};
use crate::metrics::point_dist2;

/// Which race-resolution strategy to use for the shared accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One mutex (critical region) around every accumulator update.
    Critical,
    /// Lock-free atomic updates (CAS loop for the f64 sums).
    Atomic,
    /// Per-chunk private accumulators merged deterministically.
    Reduction,
}

/// Fixed chunk count for the reduction strategy: independent of the rayon
/// pool size, so results do not depend on the number of threads.
const REDUCTION_CHUNKS: usize = 64;

/// Accumulators produced by one iteration's phases.
struct IterStats {
    changes: usize,
    counts: Vec<u64>,
    sums: Vec<f64>,
}

/// Run parallel k-means from the given initial centroids.
pub fn fit(
    points: &Matrix,
    config: &KMeansConfig,
    init: Matrix,
    strategy: Strategy,
) -> KMeansResult {
    let k = init.rows();
    assert!(k >= 1, "need at least one centroid");
    assert!(points.rows() >= 1, "need at least one point");
    assert_eq!(points.cols(), init.cols(), "dimensionality mismatch");
    assert!(config.max_iters >= 1, "need at least one iteration");
    let d = points.cols();
    let n = points.rows();

    let mut centroids = init;
    let mut assignments: Vec<u32> = vec![u32::MAX; n];
    let mut iterations = 0;

    loop {
        // Hoist the centroid norms once per iteration; every strategy
        // shares the same kernel, so assignments are identical across the
        // whole ladder (and the sequential reference) by construction.
        let cand = Candidates::new(&centroids);
        let stats = match strategy {
            Strategy::Critical => iter_critical(points, &cand, &mut assignments),
            Strategy::Atomic => iter_atomic(points, &cand, &mut assignments),
            Strategy::Reduction => iter_reduction(points, &cand, &mut assignments),
        };
        drop(cand);

        let mut shift: f64 = 0.0;
        for c in 0..k {
            if stats.counts[c] == 0 {
                continue;
            }
            let inv = 1.0 / stats.counts[c] as f64;
            let new: Vec<f64> = stats.sums[c * d..(c + 1) * d]
                .iter()
                .map(|s| s * inv)
                .collect();
            shift = shift.max(point_dist2(&new, centroids.row(c)).sqrt());
            centroids.row_mut(c).copy_from_slice(&new);
        }
        iterations += 1;

        let termination = if stats.changes <= config.min_changes {
            Some(Termination::FewChanges)
        } else if shift <= config.min_shift {
            Some(Termination::SmallShift)
        } else if iterations >= config.max_iters {
            Some(Termination::MaxIters)
        } else {
            None
        };
        if let Some(termination) = termination {
            return KMeansResult {
                centroids,
                assignments,
                iterations,
                termination,
                last_changes: stats.changes,
                last_shift: shift,
            };
        }
    }
}

/// Stage 2: every shared update inside a critical region.
fn iter_critical(points: &Matrix, cand: &Candidates<'_>, assignments: &mut [u32]) -> IterStats {
    let k = cand.len();
    let d = points.cols();
    let shared = Mutex::new((0usize, vec![0u64; k], vec![0.0f64; k * d]));
    assignments
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, slot)| {
            let row = points.row(i);
            let a = cand.nearest(row);
            let changed = *slot != a;
            *slot = a;
            // The critical region: counter, count and coordinate sums together.
            let mut guard = shared.lock();
            if changed {
                guard.0 += 1;
            }
            guard.1[a as usize] += 1;
            let s = &mut guard.2[a as usize * d..(a as usize + 1) * d];
            for (acc, &v) in s.iter_mut().zip(row) {
                *acc += v;
            }
        });
    let (changes, counts, sums) = shared.into_inner();
    IterStats {
        changes,
        counts,
        sums,
    }
}

/// Atomic f64 add by CAS on the bit pattern — the "substitute critical
/// regions with atomic operations" stage.
#[inline]
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Stage 3: atomics instead of locks.
fn iter_atomic(points: &Matrix, cand: &Candidates<'_>, assignments: &mut [u32]) -> IterStats {
    let k = cand.len();
    let d = points.cols();
    let changes = AtomicUsize::new(0);
    let counts: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let sums: Vec<AtomicU64> = (0..k * d)
        .map(|_| AtomicU64::new(0.0f64.to_bits()))
        .collect();
    assignments
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, slot)| {
            let row = points.row(i);
            let a = cand.nearest(row);
            if *slot != a {
                changes.fetch_add(1, Ordering::Relaxed);
            }
            *slot = a;
            counts[a as usize].fetch_add(1, Ordering::Relaxed);
            for (j, &v) in row.iter().enumerate() {
                atomic_f64_add(&sums[a as usize * d + j], v);
            }
        });
    IterStats {
        changes: changes.into_inner(),
        counts: counts.into_iter().map(AtomicU64::into_inner).collect(),
        sums: sums
            .into_iter()
            .map(|c| f64::from_bits(c.into_inner()))
            .collect(),
    }
}

/// Stage 4: reduction over fixed chunks, merged in chunk order.
fn iter_reduction(points: &Matrix, cand: &Candidates<'_>, assignments: &mut [u32]) -> IterStats {
    let k = cand.len();
    let d = points.cols();
    let n = points.rows();
    let chunk = n.div_ceil(REDUCTION_CHUNKS).max(1);
    // Each chunk owns a disjoint slice of the assignment array and its own
    // accumulators; no shared mutable state exists inside the parallel region.
    let partials: Vec<IterStats> = assignments
        .par_chunks_mut(chunk)
        .enumerate()
        .map(|(ci, slots)| {
            let base = ci * chunk;
            let mut changes = 0usize;
            let mut counts = vec![0u64; k];
            let mut sums = vec![0.0f64; k * d];
            for (off, slot) in slots.iter_mut().enumerate() {
                let row = points.row(base + off);
                let a = cand.nearest(row);
                if *slot != a {
                    changes += 1;
                }
                *slot = a;
                counts[a as usize] += 1;
                let s = &mut sums[a as usize * d..(a as usize + 1) * d];
                for (acc, &v) in s.iter_mut().zip(row) {
                    *acc += v;
                }
            }
            IterStats {
                changes,
                counts,
                sums,
            }
        })
        .collect();
    // Ordered, sequential merge: deterministic whatever the pool size.
    let mut total = IterStats {
        changes: 0,
        counts: vec![0; k],
        sums: vec![0.0; k * d],
    };
    for p in partials {
        total.changes += p.changes;
        for (t, v) in total.counts.iter_mut().zip(p.counts) {
            *t += v;
        }
        for (t, v) in total.sums.iter_mut().zip(p.sums) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::seq::fit_seq;
    use peachy_data::synth::gaussian_blobs;

    fn cfg() -> KMeansConfig {
        KMeansConfig {
            max_iters: 50,
            min_changes: 0,
            min_shift: 1e-12,
        }
    }

    fn assert_matches_seq(strategy: Strategy) {
        let data = gaussian_blobs(2_000, 4, 5, 1.0, 33);
        let init = random_init(&data.points, 5, 44);
        let seq = fit_seq(&data.points, &cfg(), init.clone());
        let par = fit(&data.points, &cfg(), init, strategy);
        assert_eq!(par.assignments, seq.assignments, "{strategy:?} assignments");
        assert_eq!(par.iterations, seq.iterations, "{strategy:?} iterations");
        assert_eq!(par.termination, seq.termination, "{strategy:?} termination");
        for c in 0..5 {
            for j in 0..4 {
                let a = par.centroids.get(c, j);
                let b = seq.centroids.get(c, j);
                assert!(
                    (a - b).abs() < 1e-9,
                    "{strategy:?} centroid ({c},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn critical_matches_sequential() {
        assert_matches_seq(Strategy::Critical);
    }

    #[test]
    fn atomic_matches_sequential() {
        assert_matches_seq(Strategy::Atomic);
    }

    #[test]
    fn reduction_matches_sequential() {
        assert_matches_seq(Strategy::Reduction);
    }

    #[test]
    fn reduction_bit_identical_across_thread_counts() {
        let data = gaussian_blobs(3_000, 3, 4, 1.5, 55);
        let init = random_init(&data.points, 4, 66);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let init = init.clone();
            let points = &data.points;
            pool.install(move || fit(points, &cfg(), init, Strategy::Reduction))
        };
        let r1 = run(1);
        let r4 = run(4);
        assert_eq!(r1.assignments, r4.assignments);
        assert_eq!(
            r1.centroids, r4.centroids,
            "bit-identical centroids required"
        );
        assert_eq!(r1.iterations, r4.iterations);
    }

    #[test]
    fn atomic_f64_add_accumulates() {
        let cell = AtomicU64::new(0.0f64.to_bits());
        (0..1000)
            .into_par_iter()
            .for_each(|_| atomic_f64_add(&cell, 0.5));
        assert_eq!(f64::from_bits(cell.into_inner()), 500.0);
    }

    #[test]
    fn single_point_single_cluster() {
        let p = Matrix::from_rows(&[vec![3.0, 4.0]]);
        for s in [Strategy::Critical, Strategy::Atomic, Strategy::Reduction] {
            let r = fit(&p, &cfg(), p.clone(), s);
            assert_eq!(r.assignments, vec![0]);
            assert_eq!(r.centroids.row(0), &[3.0, 4.0]);
        }
    }

    #[test]
    fn strategies_agree_with_each_other() {
        let data = gaussian_blobs(1_000, 2, 3, 0.8, 77);
        let init = random_init(&data.points, 3, 88);
        let a = fit(&data.points, &cfg(), init.clone(), Strategy::Critical);
        let b = fit(&data.points, &cfg(), init.clone(), Strategy::Atomic);
        let c = fit(&data.points, &cfg(), init, Strategy::Reduction);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(b.assignments, c.assignments);
    }

    use peachy_data::Matrix;
}
