//! Clustering-quality diagnostics: silhouette coefficient and the elbow
//! sweep — how the classroom answers "what should K be?" after the
//! assignment's algorithm work is done.

use peachy_data::Matrix;
use rayon::prelude::*;

use crate::config::KMeansConfig;
use crate::init::kmeans_plus_plus;
use crate::metrics::{inertia, point_dist2};
use crate::seq::fit_seq;

/// Mean silhouette coefficient over all points:
/// `s(i) = (b(i) − a(i)) / max(a(i), b(i))` with `a` the mean distance to
/// the own cluster and `b` the smallest mean distance to another cluster.
/// Ranges in [−1, 1]; higher is better. Points in singleton clusters score 0.
///
/// O(n²) — intended for the modest n of a quality diagnostic.
pub fn silhouette(points: &Matrix, assignments: &[u32], k: usize) -> f64 {
    assert_eq!(points.rows(), assignments.len());
    assert!(k >= 2, "silhouette needs at least two clusters");
    let n = points.rows();
    let counts = {
        let mut c = vec![0usize; k];
        for &a in assignments {
            c[a as usize] += 1;
        }
        c
    };
    let total: f64 = (0..n)
        .into_par_iter()
        .map(|i| {
            let own = assignments[i] as usize;
            if counts[own] <= 1 {
                return 0.0;
            }
            // Mean distance to each cluster.
            let mut sums = vec![0.0f64; k];
            for j in 0..n {
                if j != i {
                    sums[assignments[j] as usize] +=
                        point_dist2(points.row(i), points.row(j)).sqrt();
                }
            }
            let a = sums[own] / (counts[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && counts[c] > 0)
                .map(|c| sums[c] / counts[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                return 0.0; // only one non-empty cluster
            }
            (b - a) / a.max(b)
        })
        .sum();
    total / n as f64
}

/// One row of an elbow sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElbowPoint {
    /// Number of clusters tried.
    pub k: usize,
    /// Final inertia (within-cluster sum of squares).
    pub inertia: f64,
    /// Mean silhouette (f64::NAN for k < 2).
    pub silhouette: f64,
}

/// Sweep `k` over `candidates`, fitting each with k-means++ seeds, and
/// report inertia + silhouette per k — the data behind an elbow plot.
pub fn elbow_sweep(points: &Matrix, candidates: &[usize], seed: u64) -> Vec<ElbowPoint> {
    assert!(!candidates.is_empty());
    candidates
        .iter()
        .map(|&k| {
            let init = kmeans_plus_plus(points, k, seed ^ (k as u64));
            let r = fit_seq(points, &KMeansConfig::default(), init);
            ElbowPoint {
                k,
                inertia: inertia(points, &r.centroids, &r.assignments),
                silhouette: if k >= 2 {
                    silhouette(points, &r.assignments, k)
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn silhouette_high_for_true_clustering() {
        let data = gaussian_blobs(300, 2, 3, 0.3, 150);
        let s = silhouette(&data.points, &data.labels, 3);
        assert!(s > 0.6, "tight blobs should score high: {s}");
    }

    #[test]
    fn silhouette_low_for_random_assignment() {
        let data = gaussian_blobs(200, 2, 3, 0.3, 151);
        // Blobs label points round-robin (i % 3), so scramble by grouping
        // consecutive triples instead — decorrelated from geometry.
        let random: Vec<u32> = (0..200).map(|i| ((i / 3) % 3) as u32).collect();
        let s_true = silhouette(&data.points, &data.labels, 3);
        let s_random = silhouette(&data.points, &random, 3);
        assert!(
            s_random < s_true - 0.3,
            "random {s_random} vs true {s_true}"
        );
        assert!(s_random < 0.1);
    }

    #[test]
    fn silhouette_bounds() {
        let data = gaussian_blobs(120, 3, 4, 1.5, 152);
        let s = silhouette(&data.points, &data.labels, 4);
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn elbow_inertia_decreases_with_k() {
        let data = gaussian_blobs(400, 2, 4, 0.6, 153);
        let sweep = elbow_sweep(&data.points, &[1, 2, 4, 8], 154);
        for w in sweep.windows(2) {
            assert!(
                w[1].inertia <= w[0].inertia + 1e-9,
                "inertia must fall with k: {sweep:?}"
            );
        }
    }

    #[test]
    fn silhouette_peaks_near_true_k() {
        // 4 well-separated blobs: silhouette at k = 4 beats k = 2 and k = 8.
        let data = gaussian_blobs(400, 2, 4, 0.25, 155);
        let sweep = elbow_sweep(&data.points, &[2, 4, 8], 156);
        let s = |k: usize| sweep.iter().find(|p| p.k == k).unwrap().silhouette;
        assert!(s(4) > s(8), "k=4 {} vs k=8 {}", s(4), s(8));
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn silhouette_k1_rejected() {
        let data = gaussian_blobs(10, 2, 1, 1.0, 157);
        silhouette(&data.points, &data.labels, 1);
    }
}
