//! Confidence calibration — the quantitative face of the assignment's
//! motivation: "Often ML provides high-confidence output for
//! out-of-distribution input that should have been classified as 'I don't
//! know'." A calibrated model's confidence matches its accuracy; the
//! Expected Calibration Error (ECE) measures the gap, and deep ensembles
//! are the assignment's remedy.

use peachy_data::matrix::LabeledDataset;

use crate::ensemble::Ensemble;
use crate::nn::DenseNet;

/// One confidence bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Bin lower edge (upper edge is `lo + 1/bins`).
    pub lo: f64,
    /// Predictions whose confidence fell in this bin.
    pub count: usize,
    /// Mean confidence of those predictions.
    pub mean_confidence: f64,
    /// Fraction of those predictions that were correct.
    pub accuracy: f64,
}

/// A calibration report: the reliability diagram plus summary scores.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Equal-width confidence bins over [0, 1].
    pub bins: Vec<ReliabilityBin>,
    /// Expected Calibration Error: Σ (nᵢ/n)·|acc − conf| over bins.
    pub ece: f64,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Mean confidence.
    pub mean_confidence: f64,
}

/// Build the report from per-example `(confidence, correct)` pairs.
pub fn calibration_from_pairs(pairs: &[(f64, bool)], bins: usize) -> CalibrationReport {
    assert!(bins >= 1 && !pairs.is_empty());
    let width = 1.0 / bins as f64;
    let mut count = vec![0usize; bins];
    let mut conf_sum = vec![0.0f64; bins];
    let mut correct = vec![0usize; bins];
    for &(conf, ok) in pairs {
        assert!(
            (0.0..=1.0).contains(&conf),
            "confidence out of range: {conf}"
        );
        let b = ((conf / width) as usize).min(bins - 1);
        count[b] += 1;
        conf_sum[b] += conf;
        correct[b] += usize::from(ok);
    }
    let n = pairs.len() as f64;
    let mut ece = 0.0;
    let bins_out: Vec<ReliabilityBin> = (0..bins)
        .map(|b| {
            let c = count[b];
            let mean_confidence = if c > 0 { conf_sum[b] / c as f64 } else { 0.0 };
            let accuracy = if c > 0 {
                correct[b] as f64 / c as f64
            } else {
                0.0
            };
            if c > 0 {
                ece += (c as f64 / n) * (accuracy - mean_confidence).abs();
            }
            ReliabilityBin {
                lo: b as f64 * width,
                count: c,
                mean_confidence,
                accuracy,
            }
        })
        .collect();
    CalibrationReport {
        bins: bins_out,
        ece,
        accuracy: pairs.iter().filter(|(_, ok)| *ok).count() as f64 / n,
        mean_confidence: pairs.iter().map(|(c, _)| c).sum::<f64>() / n,
    }
}

/// Calibration of an ensemble on a labelled set (confidence = max mean
/// probability).
pub fn ensemble_calibration(
    ens: &Ensemble,
    data: &LabeledDataset,
    bins: usize,
) -> CalibrationReport {
    let pairs: Vec<(f64, bool)> = (0..data.len())
        .map(|i| {
            let r = ens.predict_with_uncertainty(data.points.row(i));
            (r.confidence, r.predicted == data.labels[i])
        })
        .collect();
    calibration_from_pairs(&pairs, bins)
}

/// Calibration of a single network on a labelled set.
pub fn model_calibration(net: &DenseNet, data: &LabeledDataset, bins: usize) -> CalibrationReport {
    let pairs: Vec<(f64, bool)> = (0..data.len())
        .map(|i| {
            let probs = net.predict_proba(data.points.row(i));
            let predicted = crate::nn::argmax(&probs);
            (probs[predicted as usize], predicted == data.labels[i])
        })
        .collect();
    calibration_from_pairs(&pairs, bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{NetConfig, TrainConfig};
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn perfectly_calibrated_pairs_have_zero_ece() {
        // Confidence c, correct with probability exactly c, bin-aligned.
        let mut pairs = Vec::new();
        for bin in 0..10 {
            let conf = bin as f64 / 10.0 + 0.05;
            let total = 100;
            let hits = (conf * total as f64).round() as usize;
            for i in 0..total {
                pairs.push((conf, i < hits));
            }
        }
        let report = calibration_from_pairs(&pairs, 10);
        assert!(report.ece < 0.01, "ece = {}", report.ece);
    }

    #[test]
    fn overconfident_pairs_have_high_ece() {
        // Always 99% confident, right half the time.
        let pairs: Vec<(f64, bool)> = (0..200).map(|i| (0.99, i % 2 == 0)).collect();
        let report = calibration_from_pairs(&pairs, 10);
        assert!((report.ece - 0.49).abs() < 0.01, "ece = {}", report.ece);
        assert_eq!(report.accuracy, 0.5);
    }

    #[test]
    fn bin_bookkeeping() {
        let pairs = vec![(0.05, true), (0.05, false), (0.95, true)];
        let report = calibration_from_pairs(&pairs, 10);
        assert_eq!(report.bins[0].count, 2);
        assert_eq!(report.bins[9].count, 1);
        assert_eq!(report.bins[0].accuracy, 0.5);
        let total: usize = report.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn confidence_one_lands_in_last_bin() {
        let report = calibration_from_pairs(&[(1.0, true)], 10);
        assert_eq!(report.bins[9].count, 1);
    }

    #[test]
    fn ensemble_and_model_reports_are_structurally_sound() {
        let all = gaussian_blobs(400, 5, 3, 1.8, 160); // overlapping → errors exist
        let train = all.select(&(0..300).collect::<Vec<_>>());
        let test = all.select(&(300..400).collect::<Vec<_>>());
        let tc = TrainConfig {
            epochs: 6,
            batch: 16,
            lr: 0.08,
            momentum: 0.9,
            seed: 161,
        };
        let ens = Ensemble::train(
            &NetConfig {
                layers: vec![5, 16, 3],
            },
            &tc,
            4,
            &train,
        );
        let ens_report = ensemble_calibration(&ens, &test, 10);
        let model_report = model_calibration(&ens.members()[0], &test, 10);
        for r in [&ens_report, &model_report] {
            assert!((0.0..=1.0).contains(&r.ece));
            assert!((0.0..=1.0).contains(&r.accuracy));
            assert_eq!(r.bins.iter().map(|b| b.count).sum::<usize>(), test.len());
        }
        // Mean ensemble confidence is softened relative to a single
        // (typically overconfident) member.
        assert!(
            ens_report.mean_confidence <= model_report.mean_confidence + 0.05,
            "ensemble {} vs member {}",
            ens_report.mean_confidence,
            model_report.mean_confidence
        );
    }
}
