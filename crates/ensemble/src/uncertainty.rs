//! Uncertainty measures over ensemble predictions.
//!
//! Given member probability vectors `p₁…p_M` and their mean `p̄`:
//!
//! * **predictive entropy** `H(p̄)` — total uncertainty;
//! * **expected entropy** `E[H(p_m)]` — aleatoric (data) uncertainty;
//! * **mutual information** `H(p̄) − E[H(p_m)]` — epistemic (model)
//!   uncertainty, the part an ensemble exposes and a single net cannot;
//! * **mean variance** — average per-class variance across members.

/// Shannon entropy in nats of a probability vector.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum()
}

/// Full uncertainty decomposition of an ensemble's output on one input.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertaintyReport {
    /// Mean probabilities across members.
    pub mean_probs: Vec<f64>,
    /// Arg-max class of the mean.
    pub predicted: u32,
    /// Confidence: max of the mean probabilities.
    pub confidence: f64,
    /// Predictive entropy `H(p̄)` (total).
    pub predictive_entropy: f64,
    /// Expected member entropy (aleatoric part).
    pub expected_entropy: f64,
    /// Mutual information (epistemic part), ≥ 0 up to rounding.
    pub mutual_information: f64,
    /// Mean per-class variance across members.
    pub mean_variance: f64,
}

/// Compute the report from per-member probability vectors.
pub fn report(member_probs: &[Vec<f64>]) -> UncertaintyReport {
    assert!(!member_probs.is_empty(), "empty ensemble");
    let classes = member_probs[0].len();
    assert!(
        member_probs.iter().all(|p| p.len() == classes),
        "ragged member outputs"
    );
    let m = member_probs.len() as f64;
    let mut mean = vec![0.0f64; classes];
    for p in member_probs {
        for (acc, &v) in mean.iter_mut().zip(p) {
            *acc += v / m;
        }
    }
    let predictive_entropy = entropy(&mean);
    let expected_entropy = member_probs.iter().map(|p| entropy(p)).sum::<f64>() / m;
    let mut var = vec![0.0f64; classes];
    for p in member_probs {
        for ((v, &x), &mu) in var.iter_mut().zip(p).zip(&mean) {
            *v += (x - mu) * (x - mu) / m;
        }
    }
    let predicted = crate::nn::argmax(&mean);
    UncertaintyReport {
        confidence: mean[predicted as usize],
        predicted,
        predictive_entropy,
        expected_entropy,
        mutual_information: (predictive_entropy - expected_entropy).max(0.0),
        mean_variance: var.iter().sum::<f64>() / classes as f64,
        mean_probs: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
        let uniform = entropy(&[0.25; 4]);
        assert!((uniform - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn agreeing_members_have_zero_mutual_information() {
        let p = vec![0.7, 0.2, 0.1];
        let r = report(&[p.clone(), p.clone(), p]);
        assert!(r.mutual_information < 1e-12);
        assert!(r.mean_variance < 1e-18);
        assert_eq!(r.predicted, 0);
    }

    #[test]
    fn disagreeing_members_have_high_mutual_information() {
        // Two confident members that disagree: total entropy high, member
        // entropy low → MI high.
        let r = report(&[vec![0.98, 0.02], vec![0.02, 0.98]]);
        assert!(r.mutual_information > 0.5, "MI = {}", r.mutual_information);
        assert!((r.mean_probs[0] - 0.5).abs() < 1e-12);
        assert!(r.confidence < 0.51);
    }

    #[test]
    fn aleatoric_vs_epistemic_separation() {
        // Members agree on a *flat* distribution: total entropy high, but
        // MI ≈ 0 (pure aleatoric) — the decomposition must distinguish this
        // from disagreement.
        let flat = vec![0.5, 0.5];
        let agree_flat = report(&[flat.clone(), flat]);
        let disagree = report(&[vec![0.98, 0.02], vec![0.02, 0.98]]);
        assert!(agree_flat.predictive_entropy > 0.6);
        assert!(agree_flat.mutual_information < 1e-12);
        assert!(disagree.mutual_information > agree_flat.mutual_information);
    }

    #[test]
    fn report_mean_is_probability_vector() {
        let r = report(&[vec![0.6, 0.3, 0.1], vec![0.2, 0.5, 0.3]]);
        assert!((r.mean_probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(r.predicted, crate::nn::argmax(&r.mean_probs));
    }

    #[test]
    #[should_panic(expected = "empty ensemble")]
    fn empty_ensemble_rejected() {
        report(&[]);
    }
}
