//! The deep ensemble: M independently-seeded networks trained on the same
//! data, predictions aggregated by probability averaging.

use peachy_data::matrix::LabeledDataset;
use rayon::prelude::*;

use crate::nn::{DenseNet, NetConfig, TrainConfig};
use crate::uncertainty::{report, UncertaintyReport};

/// An ensemble of trained networks.
#[derive(Debug, Clone)]
pub struct Ensemble {
    members: Vec<DenseNet>,
}

impl Ensemble {
    /// Wrap pre-trained members (used by the distributed trainer).
    pub fn from_members(members: Vec<DenseNet>) -> Self {
        assert!(!members.is_empty(), "empty ensemble");
        let classes = members[0].classes();
        assert!(
            members.iter().all(|m| m.classes() == classes),
            "mismatched member outputs"
        );
        Self { members }
    }

    /// Train `m` members in parallel on the rayon pool — the shared-memory
    /// analogue of the assignment's task farm. "Each NN is trained in
    /// parallel using the entire training set"; members differ only in
    /// their seed (weight init + batch order).
    pub fn train(config: &NetConfig, tc: &TrainConfig, m: usize, data: &LabeledDataset) -> Self {
        assert!(m >= 1, "need at least one member");
        let members: Vec<DenseNet> = (0..m)
            .into_par_iter()
            .map(|i| {
                let seed = tc
                    .seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15);
                let mut net = DenseNet::new(config, seed);
                net.train(data, &TrainConfig { seed, ..*tc });
                net
            })
            .collect();
        Self { members }
    }

    /// Ensemble size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow the members.
    pub fn members(&self) -> &[DenseNet] {
        &self.members
    }

    /// Per-member probability vectors for one input.
    pub fn member_probs(&self, x: &[f64]) -> Vec<Vec<f64>> {
        self.members.iter().map(|m| m.predict_proba(x)).collect()
    }

    /// Aggregated prediction with the full uncertainty decomposition.
    pub fn predict_with_uncertainty(&self, x: &[f64]) -> UncertaintyReport {
        report(&self.member_probs(x))
    }

    /// Aggregated arg-max prediction.
    pub fn predict(&self, x: &[f64]) -> u32 {
        self.predict_with_uncertainty(x).predicted
    }

    /// Ensemble accuracy over a dataset (mean-probability voting).
    pub fn accuracy(&self, data: &LabeledDataset) -> f64 {
        let correct = (0..data.len())
            .into_par_iter()
            .filter(|&i| self.predict(data.points.row(i)) == data.labels[i])
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::synth::gaussian_blobs;

    fn blob_split() -> (LabeledDataset, LabeledDataset) {
        let all = gaussian_blobs(500, 6, 3, 0.8, 10);
        (
            all.select(&(0..400).collect::<Vec<_>>()),
            all.select(&(400..500).collect::<Vec<_>>()),
        )
    }

    fn quick_tc(seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: 8,
            batch: 16,
            lr: 0.08,
            momentum: 0.9,
            seed,
        }
    }

    #[test]
    fn members_differ_but_agree_on_easy_data() {
        let (train, test) = blob_split();
        let config = NetConfig {
            layers: vec![6, 16, 3],
        };
        let ens = Ensemble::train(&config, &quick_tc(1), 4, &train);
        assert_eq!(ens.len(), 4);
        // Members are genuinely different models…
        let x = test.points.row(0);
        let probs = ens.member_probs(x);
        assert_ne!(probs[0], probs[1]);
        // …but the ensemble is accurate.
        let acc = ens.accuracy(&test);
        assert!(acc > 0.85, "accuracy = {acc}");
    }

    #[test]
    fn ensemble_at_least_as_good_as_typical_member() {
        let (train, test) = blob_split();
        let config = NetConfig {
            layers: vec![6, 16, 3],
        };
        let ens = Ensemble::train(&config, &quick_tc(2), 5, &train);
        let mean_member: f64 =
            ens.members().iter().map(|m| m.accuracy(&test)).sum::<f64>() / ens.len() as f64;
        let ens_acc = ens.accuracy(&test);
        assert!(
            ens_acc >= mean_member - 0.03,
            "ensemble {ens_acc} vs mean member {mean_member}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (train, _) = blob_split();
        let config = NetConfig {
            layers: vec![6, 8, 3],
        };
        let a = Ensemble::train(&config, &quick_tc(3), 3, &train);
        let b = Ensemble::train(&config, &quick_tc(3), 3, &train);
        let x = train.points.row(0);
        assert_eq!(a.member_probs(x), b.member_probs(x));
    }

    #[test]
    fn uncertainty_report_is_consistent() {
        let (train, test) = blob_split();
        let config = NetConfig {
            layers: vec![6, 12, 3],
        };
        let ens = Ensemble::train(&config, &quick_tc(4), 3, &train);
        let r = ens.predict_with_uncertainty(test.points.row(0));
        assert!((r.mean_probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r.mutual_information >= 0.0);
        assert!(r.predictive_entropy + 1e-12 >= r.mutual_information);
    }

    #[test]
    #[should_panic(expected = "empty ensemble")]
    fn empty_members_rejected() {
        Ensemble::from_members(vec![]);
    }
}
