//! Periodic evaluation during training — the §7 variation "adding the
//! ability to check the accuracy of the model at regular intervals".
//!
//! [`train_with_history`] interleaves training epochs with held-out
//! evaluation, recording a [`TrainingCurve`]; [`EarlyStop`] turns the
//! interval checks into a stopping rule (no improvement for `patience`
//! checks → stop), which is what interval checking is usually *for*.

use peachy_data::matrix::LabeledDataset;

use crate::nn::{DenseNet, TrainConfig};

/// One evaluation checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Epochs completed when this checkpoint was taken.
    pub epoch: usize,
    /// Mean training loss of the last epoch trained.
    pub train_loss: f64,
    /// Held-out accuracy.
    pub val_accuracy: f64,
    /// Held-out loss.
    pub val_loss: f64,
}

/// A recorded training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCurve {
    /// Checkpoints in epoch order.
    pub checkpoints: Vec<Checkpoint>,
    /// Whether early stopping fired (vs exhausting the epoch budget).
    pub stopped_early: bool,
}

impl TrainingCurve {
    /// The best validation accuracy observed.
    pub fn best_accuracy(&self) -> f64 {
        self.checkpoints
            .iter()
            .map(|c| c.val_accuracy)
            .fold(0.0, f64::max)
    }
}

/// Early-stopping policy applied at each checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Checkpoints without improvement tolerated before stopping.
    pub patience: usize,
    /// Minimum accuracy improvement that counts.
    pub min_delta: f64,
}

/// Train `net` for up to `max_epochs`, evaluating on `validation` every
/// `eval_interval` epochs; optionally stop early.
pub fn train_with_history(
    net: &mut DenseNet,
    train: &LabeledDataset,
    validation: &LabeledDataset,
    tc: &TrainConfig,
    max_epochs: usize,
    eval_interval: usize,
    early_stop: Option<EarlyStop>,
) -> TrainingCurve {
    assert!(max_epochs >= 1 && eval_interval >= 1);
    let mut checkpoints = Vec::new();
    let mut best = f64::NEG_INFINITY;
    let mut stale = 0usize;
    let mut epoch = 0usize;
    let mut stopped_early = false;
    while epoch < max_epochs {
        let chunk = eval_interval.min(max_epochs - epoch);
        // Each chunk gets a distinct shuffling seed so resuming is not
        // replaying the same batch order.
        let train_loss = net.train(
            train,
            &TrainConfig {
                epochs: chunk,
                seed: tc.seed.wrapping_add(epoch as u64),
                ..*tc
            },
        );
        epoch += chunk;
        let val_accuracy = net.accuracy(validation);
        let val_loss = net.loss(validation);
        checkpoints.push(Checkpoint {
            epoch,
            train_loss,
            val_accuracy,
            val_loss,
        });
        if let Some(es) = early_stop {
            if val_accuracy > best + es.min_delta {
                best = val_accuracy;
                stale = 0;
            } else {
                stale += 1;
                if stale >= es.patience {
                    stopped_early = true;
                    break;
                }
            }
        }
    }
    TrainingCurve {
        checkpoints,
        stopped_early,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::NetConfig;
    use peachy_data::synth::gaussian_blobs;

    fn split() -> (LabeledDataset, LabeledDataset) {
        let all = gaussian_blobs(400, 5, 3, 0.7, 90);
        (
            all.select(&(0..320).collect::<Vec<_>>()),
            all.select(&(320..400).collect::<Vec<_>>()),
        )
    }

    fn tc() -> TrainConfig {
        TrainConfig {
            epochs: 1,
            batch: 16,
            lr: 0.08,
            momentum: 0.9,
            seed: 91,
        }
    }

    #[test]
    fn checkpoints_at_requested_interval() {
        let (train, val) = split();
        let mut net = DenseNet::new(
            &NetConfig {
                layers: vec![5, 12, 3],
            },
            92,
        );
        let curve = train_with_history(&mut net, &train, &val, &tc(), 9, 3, None);
        let epochs: Vec<usize> = curve.checkpoints.iter().map(|c| c.epoch).collect();
        assert_eq!(epochs, vec![3, 6, 9]);
        assert!(!curve.stopped_early);
    }

    #[test]
    fn uneven_final_interval() {
        let (train, val) = split();
        let mut net = DenseNet::new(
            &NetConfig {
                layers: vec![5, 12, 3],
            },
            93,
        );
        let curve = train_with_history(&mut net, &train, &val, &tc(), 7, 3, None);
        let epochs: Vec<usize> = curve.checkpoints.iter().map(|c| c.epoch).collect();
        assert_eq!(epochs, vec![3, 6, 7]);
    }

    #[test]
    fn accuracy_improves_over_curve() {
        let (train, val) = split();
        let mut net = DenseNet::new(
            &NetConfig {
                layers: vec![5, 16, 3],
            },
            94,
        );
        let curve = train_with_history(&mut net, &train, &val, &tc(), 12, 2, None);
        let first = curve.checkpoints.first().unwrap().val_accuracy;
        let best = curve.best_accuracy();
        assert!(best >= first);
        assert!(best > 0.8, "best accuracy = {best}");
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        let (train, val) = split();
        let mut net = DenseNet::new(
            &NetConfig {
                layers: vec![5, 16, 3],
            },
            95,
        );
        // Impossible improvement bar: min_delta > 1 means nothing ever
        // counts as improvement, so patience is exhausted immediately.
        let curve = train_with_history(
            &mut net,
            &train,
            &val,
            &tc(),
            50,
            1,
            Some(EarlyStop {
                patience: 3,
                min_delta: 2.0,
            }),
        );
        assert!(curve.stopped_early);
        // First checkpoint counts as improvement over −∞, then `patience`
        // stale checks: 1 + 3 checkpoints total.
        assert_eq!(curve.checkpoints.len(), 4);
    }

    #[test]
    fn no_early_stop_when_improving() {
        let (train, val) = split();
        let mut net = DenseNet::new(
            &NetConfig {
                layers: vec![5, 16, 3],
            },
            96,
        );
        let curve = train_with_history(
            &mut net,
            &train,
            &val,
            &tc(),
            6,
            2,
            Some(EarlyStop {
                patience: 10,
                min_delta: 0.0,
            }),
        );
        assert!(!curve.stopped_early);
        assert_eq!(curve.checkpoints.len(), 3);
    }
}
