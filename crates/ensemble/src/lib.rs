//! # peachy-ensemble
//!
//! Deep-ensemble uncertainty estimation with hyper-parameter optimization —
//! the §7 Peachy assignment, built from scratch:
//!
//! * [`nn`] — a dense neural network (ReLU hidden layers, softmax output,
//!   cross-entropy loss, SGD with momentum), gradient-checked against
//!   finite differences in the test-suite. This is the "simple Fully
//!   Connected Neural Network that classifies the MNIST handwritten
//!   digits" of the assignment (the MNIST substitute lives in
//!   [`peachy_data::digits`]).
//! * [`ensemble`] — M independently-trained models whose "predictions are
//!   aggregated by averaging the predicted probabilities".
//! * [`uncertainty`] — predictive entropy, expected member entropy, mutual
//!   information (the epistemic part) and inter-member variance: the
//!   quantities behind Figure 4's "output 4 with uncertainty 0.4".
//! * [`schedule`] — the PDC concept of the assignment: "how to distribute
//!   independent tasks to different nodes in MPI when the number of nodes
//!   is not evenly divisible by the number of tasks", plus the
//!   [`peachy_cluster`]-backed distributed trainer and the assignment's
//!   suggested variation (killing the lowest-performing models and
//!   reassigning their resources).
//! * [`hpo`] — random-search hyper-parameter optimization whose
//!   intermediate models *are* the ensemble, "so uncertainty evaluation is
//!   essentially free".

// Numeric kernels below use explicit index loops deliberately: they mirror
// the assignments' pseudocode and keep stencil/neighbour indexing visible.
#![allow(clippy::needless_range_loop)]

pub mod calibration;
pub mod ensemble;
pub mod history;
pub mod hpo;
pub mod nn;
pub mod schedule;
pub mod uncertainty;

pub use calibration::{
    calibration_from_pairs, ensemble_calibration, model_calibration, CalibrationReport,
};
pub use ensemble::Ensemble;
pub use history::{train_with_history, Checkpoint, EarlyStop, TrainingCurve};
pub use hpo::{random_search, HpoConfig, HpoResult};
pub use nn::{DenseNet, NetConfig, TrainConfig};
pub use schedule::{
    block_assignment, distribute_training, master_worker, round_robin_assignment,
    train_with_culling,
};
pub use uncertainty::{entropy, UncertaintyReport};
