//! A dense neural network from scratch: forward, backward, SGD+momentum.
//!
//! Sized for the assignment's setting — a small fully-connected classifier
//! over 28×28 images — with no external numerics. Weights are flat
//! row-major `Vec<f64>`s; the backward pass is hand-derived and verified
//! against finite differences in the tests.

use peachy_data::kernels::{matmul_nt, matvec, matvec_t};
use peachy_data::matrix::{LabeledDataset, Matrix};
use peachy_prng::{Lcg64, Normal, RandomStream};

/// Network architecture: layer widths from input to output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Sizes `[input, hidden…, output]`; at least `[in, out]`.
    pub layers: Vec<usize>,
}

impl NetConfig {
    /// The assignment's default: one hidden layer over digit images.
    pub fn digits_default(hidden: usize) -> Self {
        Self {
            layers: vec![peachy_data::digits::PIXELS, hidden, 10],
        }
    }
}

/// Training hyper-parameters — the space HPO searches over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f64,
    /// Seed for weight init and batch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            batch: 16,
            lr: 0.05,
            momentum: 0.9,
            seed: 1,
        }
    }
}

/// One dense layer: `out = W·x + b`, with momentum buffers.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // rows = outputs, cols = inputs (row-major)
    b: Vec<f64>,
    vw: Vec<f64>, // momentum velocity
    vb: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut Lcg64) -> Self {
        // He initialization for ReLU layers.
        let mut normal = Normal::new(0.0, (2.0 / inputs as f64).sqrt());
        let w = (0..inputs * outputs).map(|_| normal.sample(rng)).collect();
        Self {
            w,
            b: vec![0.0; outputs],
            vw: vec![0.0; inputs * outputs],
            vb: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(x.len(), self.inputs);
        // Lane-blocked GEMV; bias-first, ascending-column accumulation →
        // bit-identical to the naïve two-loop version this replaced.
        matvec(&self.w, self.outputs, self.inputs, x, Some(&self.b), out);
    }
}

/// Softmax in place, numerically stabilized.
fn softmax(z: &mut [f64]) {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

/// A trained (or trainable) dense network.
#[derive(Debug, Clone)]
pub struct DenseNet {
    layers: Vec<Layer>,
    config: NetConfig,
}

impl peachy_cluster::ByteSized for DenseNet {
    fn approx_bytes(&self) -> usize {
        // The weights dominate; momentum velocities travel with the net
        // (gathering a trained member ships its full state).
        self.layers
            .iter()
            .map(|l| {
                8 * (l.w.len() + l.b.len() + l.vw.len() + l.vb.len())
                    + 2 * std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + peachy_cluster::ByteSized::approx_bytes(&self.config.layers)
    }
}

/// Per-layer gradient accumulators for one mini-batch.
struct Grads {
    dw: Vec<Vec<f64>>,
    db: Vec<Vec<f64>>,
}

impl DenseNet {
    /// Fresh network with He-initialized weights.
    pub fn new(config: &NetConfig, seed: u64) -> Self {
        assert!(
            config.layers.len() >= 2,
            "need at least input and output layers"
        );
        assert!(config.layers.iter().all(|&l| l > 0), "zero-width layer");
        let mut rng = Lcg64::seed_from(seed);
        let layers = config
            .layers
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        Self {
            layers,
            config: config.clone(),
        }
    }

    /// The architecture.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Number of classes (output width).
    pub fn classes(&self) -> usize {
        *self.config.layers.last().expect("non-empty")
    }

    /// Total parameter count.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Class probabilities for one input.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let (activations, _) = self.forward_all(x);
        activations.last().expect("output layer").clone()
    }

    /// Arg-max class for one input.
    pub fn predict(&self, x: &[f64]) -> u32 {
        let probs = self.predict_proba(x);
        argmax(&probs)
    }

    /// Class probabilities for every row of `x` — one rayon-blocked GEMM
    /// per layer ([`matmul_nt`]) instead of per-row GEMVs. Each output
    /// element reproduces the single-row accumulation order, so row `i`
    /// is bit-identical to `predict_proba(x.row(i))`.
    pub fn predict_proba_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.config.layers[0], "input width mismatch");
        let mut act = x.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = matmul_nt(&act, &layer.w, layer.outputs, Some(&layer.b));
            let last = li + 1 == self.layers.len();
            for i in 0..z.rows() {
                let row = z.row_mut(i);
                if last {
                    softmax(row);
                } else {
                    for v in row.iter_mut() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                }
            }
            act = z;
        }
        act
    }

    /// Arg-max class for every row of `x` (batched forward pass).
    pub fn predict_batch(&self, x: &Matrix) -> Vec<u32> {
        let probs = self.predict_proba_batch(x);
        (0..probs.rows()).map(|i| argmax(probs.row(i))).collect()
    }

    /// Mean accuracy over a dataset (batched forward pass).
    pub fn accuracy(&self, data: &LabeledDataset) -> f64 {
        let pred = self.predict_batch(&data.points);
        let correct = pred
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Mean cross-entropy loss over a dataset (batched forward pass).
    pub fn loss(&self, data: &LabeledDataset) -> f64 {
        let probs = self.predict_proba_batch(&data.points);
        let mut total = 0.0;
        for (i, &label) in data.labels.iter().enumerate() {
            total -= probs.get(i, label as usize).max(1e-300).ln();
        }
        total / data.len() as f64
    }

    /// Forward pass keeping (post-activation) values per layer plus the
    /// pre-activation of each hidden layer for the backward pass.
    /// Returns `(activations, pre_relu_masks)` where `activations[0] = x`.
    fn forward_all(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<bool>>) {
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.to_vec());
        let mut masks = Vec::with_capacity(self.layers.len().saturating_sub(1));
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(activations.last().expect("input"), &mut buf);
            let last = li + 1 == self.layers.len();
            if last {
                softmax(&mut buf);
            } else {
                // ReLU + mask for backprop.
                let mask = buf.iter().map(|&v| v > 0.0).collect::<Vec<bool>>();
                for v in buf.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                masks.push(mask);
            }
            activations.push(buf.clone());
        }
        (activations, masks)
    }

    /// Accumulate gradients for one example into `grads`; returns its loss.
    fn backward_one(&self, x: &[f64], label: u32, grads: &mut Grads) -> f64 {
        let (activations, masks) = self.forward_all(x);
        let probs = activations.last().expect("output");
        let loss = -probs[label as usize].max(1e-300).ln();
        // dL/dz for softmax+CE: p − one_hot.
        let mut delta: Vec<f64> = probs.clone();
        delta[label as usize] -= 1.0;
        // Walk layers backwards.
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input = &activations[li];
            // Gradients for this layer.
            let dw = &mut grads.dw[li];
            let db = &mut grads.db[li];
            for o in 0..layer.outputs {
                db[o] += delta[o];
                let row = &mut dw[o * layer.inputs..(o + 1) * layer.inputs];
                let d = delta[o];
                for (g, xi) in row.iter_mut().zip(input) {
                    *g += d * xi;
                }
            }
            if li > 0 {
                // Propagate: delta_prev = Wᵀ·delta, gated by the ReLU mask.
                let mut prev = Vec::new();
                matvec_t(&layer.w, layer.outputs, layer.inputs, &delta, &mut prev);
                let mask = &masks[li - 1];
                for (p, &alive) in prev.iter_mut().zip(mask) {
                    if !alive {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
        }
        loss
    }

    /// Train with mini-batch SGD + momentum; returns the mean training loss
    /// of the final epoch.
    pub fn train(&mut self, data: &LabeledDataset, tc: &TrainConfig) -> f64 {
        assert!(!data.is_empty(), "empty training set");
        assert_eq!(data.dims(), self.config.layers[0], "input width mismatch");
        assert!(
            data.classes as usize <= self.classes(),
            "more classes than output units"
        );
        assert!(tc.batch >= 1 && tc.epochs >= 1);
        let n = data.len();
        let mut rng = Lcg64::seed_from(tc.seed ^ 0x7261696e);
        let mut order: Vec<usize> = (0..n).collect();
        let mut last_epoch_loss = 0.0;
        for _epoch in 0..tc.epochs {
            // Seeded shuffle per epoch.
            for i in (1..n).rev() {
                let j = rng.next_below((i + 1) as u64) as usize;
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            for batch in order.chunks(tc.batch) {
                let mut grads = Grads {
                    dw: self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
                    db: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
                };
                for &i in batch {
                    epoch_loss += self.backward_one(data.points.row(i), data.labels[i], &mut grads);
                }
                let scale = tc.lr / batch.len() as f64;
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    for (w, (v, g)) in layer
                        .w
                        .iter_mut()
                        .zip(layer.vw.iter_mut().zip(&grads.dw[li]))
                    {
                        *v = tc.momentum * *v - scale * g;
                        *w += *v;
                    }
                    for (b, (v, g)) in layer
                        .b
                        .iter_mut()
                        .zip(layer.vb.iter_mut().zip(&grads.db[li]))
                    {
                        *v = tc.momentum * *v - scale * g;
                        *b += *v;
                    }
                }
            }
            last_epoch_loss = epoch_loss / n as f64;
        }
        last_epoch_loss
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(v: &[f64]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::matrix::Matrix;
    use peachy_data::synth::gaussian_blobs;

    fn tiny_config() -> NetConfig {
        NetConfig {
            layers: vec![4, 8, 3],
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let net = DenseNet::new(&tiny_config(), 1);
        let p = net.predict_proba(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = DenseNet::new(&tiny_config(), 7);
        let b = DenseNet::new(&tiny_config(), 7);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        let c = DenseNet::new(&tiny_config(), 8);
        assert_ne!(a.predict_proba(&x), c.predict_proba(&x));
    }

    #[test]
    fn parameter_count() {
        let net = DenseNet::new(&tiny_config(), 1);
        assert_eq!(net.parameter_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Core correctness: analytic gradients ≈ numeric gradients.
        let config = NetConfig {
            layers: vec![3, 5, 2],
        };
        let net = DenseNet::new(&config, 3);
        let x = [0.4, -0.7, 0.2];
        let label = 1u32;
        let mut grads = Grads {
            dw: net.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            db: net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        };
        net.backward_one(&x, label, &mut grads);
        let eps = 1e-6;
        let loss_of = |n: &DenseNet| -> f64 { -n.predict_proba(&x)[label as usize].ln() };
        for li in 0..net.layers.len() {
            for wi in 0..net.layers[li].w.len() {
                let mut plus = net.clone();
                plus.layers[li].w[wi] += eps;
                let mut minus = net.clone();
                minus.layers[li].w[wi] -= eps;
                let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                let analytic = grads.dw[li][wi];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "layer {li} w[{wi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            for bi in 0..net.layers[li].b.len() {
                let mut plus = net.clone();
                plus.layers[li].b[bi] += eps;
                let mut minus = net.clone();
                minus.layers[li].b[bi] -= eps;
                let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                let analytic = grads.db[li][bi];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "layer {li} b[{bi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let data = gaussian_blobs(300, 4, 3, 1.0, 5);
        let mut net = DenseNet::new(
            &NetConfig {
                layers: vec![4, 16, 3],
            },
            2,
        );
        let before = net.loss(&data);
        net.train(
            &data,
            &TrainConfig {
                epochs: 8,
                batch: 8,
                lr: 0.1,
                momentum: 0.9,
                seed: 3,
            },
        );
        let after = net.loss(&data);
        assert!(after < before * 0.5, "loss {before} → {after}");
    }

    #[test]
    fn learns_separable_blobs() {
        let all = gaussian_blobs(600, 6, 4, 0.6, 9);
        let train = all.select(&(0..450).collect::<Vec<_>>());
        let test = all.select(&(450..600).collect::<Vec<_>>());
        let mut net = DenseNet::new(
            &NetConfig {
                layers: vec![6, 24, 4],
            },
            4,
        );
        net.train(
            &train,
            &TrainConfig {
                epochs: 15,
                batch: 16,
                lr: 0.08,
                momentum: 0.9,
                seed: 5,
            },
        );
        let acc = net.accuracy(&test);
        assert!(acc > 0.9, "test accuracy = {acc}");
    }

    #[test]
    fn batch_forward_bit_identical_to_single_rows() {
        let data = gaussian_blobs(150, 4, 3, 1.2, 13);
        let net = DenseNet::new(&tiny_config(), 6);
        let batch = net.predict_proba_batch(&data.points);
        for i in 0..data.len() {
            assert_eq!(
                batch.row(i),
                &net.predict_proba(data.points.row(i))[..],
                "row {i}"
            );
        }
        let preds = net.predict_batch(&data.points);
        for i in 0..data.len() {
            assert_eq!(preds[i], net.predict(data.points.row(i)));
        }
    }

    #[test]
    fn softmax_stability_with_large_logits() {
        let mut z = vec![1000.0, 1001.0, 999.0];
        softmax(&mut z);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(z.iter().all(|v| v.is_finite()));
        assert!(z[1] > z[0] && z[0] > z[2]);
    }

    #[test]
    fn argmax_ties_break_first() {
        assert_eq!(argmax(&[0.5, 0.5, 0.1]), 0);
        assert_eq!(argmax(&[0.1, 0.2, 0.9]), 2);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn train_rejects_wrong_width() {
        let data = LabeledDataset::new(Matrix::from_rows(&[vec![0.0; 5]]), vec![0], 1);
        let mut net = DenseNet::new(&tiny_config(), 1);
        net.train(&data, &TrainConfig::default());
    }
}
