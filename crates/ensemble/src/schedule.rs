//! Task → rank distribution: the assignment's PDC concept.
//!
//! "The PDC concept covered is how to distribute independent tasks to
//! different nodes in MPI when the number of nodes is not evenly divisible
//! by the number of tasks." Two classic assignments are provided (block
//! and round-robin), plus the [`peachy_cluster`]-backed distributed
//! ensemble trainer and the suggested variation of killing the
//! lowest-performing models and reassigning resources.

use peachy_cluster::{ByteSized, Cluster, Shared};
use peachy_data::matrix::LabeledDataset;

use crate::ensemble::Ensemble;
use crate::nn::{DenseNet, NetConfig, TrainConfig};

/// Block assignment of `tasks` over `ranks`: rank `r` gets a contiguous
/// run, the first `tasks % ranks` ranks get one extra. Delegates to the
/// workspace-wide balanced-block rule ([`peachy_cluster::dist::block_range`]).
pub fn block_assignment(tasks: usize, ranks: usize, rank: usize) -> std::ops::Range<usize> {
    peachy_cluster::dist::block_range(tasks, ranks, rank)
}

/// Round-robin assignment: rank `r` gets tasks `r, r+ranks, r+2·ranks, …`
/// ([`peachy_cluster::dist::cyclic_indices`]).
pub fn round_robin_assignment(tasks: usize, ranks: usize, rank: usize) -> Vec<usize> {
    peachy_cluster::dist::cyclic_indices(tasks, ranks, rank).collect()
}

/// Load imbalance of an assignment: `max_load / mean_load` (1.0 = perfect).
pub fn imbalance(loads: &[usize]) -> f64 {
    assert!(!loads.is_empty());
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().expect("non-empty") as f64;
    max / mean
}

/// Train an ensemble of `m` models distributed over `ranks` simulated
/// nodes with block assignment; the root gathers the trained members and
/// re-broadcasts the assembled weight set, so *every* rank ends the job
/// holding the full ensemble (as it would for distributed inference).
///
/// Every rank holds the full training set (as in the assignment, where
/// each model trains on all data) and trains only its assigned models.
/// The weight broadcast rides the zero-copy collective: the tree fan-out
/// moves one `Arc` per edge, never a deep copy of the trained networks.
pub fn distribute_training(
    config: &NetConfig,
    tc: &TrainConfig,
    m: usize,
    ranks: usize,
    data: &LabeledDataset,
) -> Ensemble {
    assert!(m >= 1 && ranks >= 1);
    let mut outputs = Cluster::run(ranks, |comm| {
        let my_tasks = block_assignment(m, comm.size(), comm.rank());
        let trained: Vec<(usize, DenseNet)> = my_tasks
            .map(|task| {
                let seed = tc
                    .seed
                    .wrapping_add(task as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15);
                let mut net = DenseNet::new(config, seed);
                net.train(data, &TrainConfig { seed, ..*tc });
                (task, net)
            })
            .collect();
        let assembled = comm.gather(0, trained).map(|blocks| {
            let mut members: Vec<(usize, DenseNet)> = blocks.into_iter().flatten().collect();
            members.sort_by_key(|(task, _)| *task);
            members
        });
        comm.broadcast_shared(0, Shared::new(assembled.unwrap_or_default()))
    });
    let shared = outputs.swap_remove(0);
    drop(outputs); // release the other ranks' handles so root's unwraps clean
    let members = Shared::try_unwrap(shared).unwrap_or_else(|kept| (*kept).clone());
    assert_eq!(members.len(), m, "every task trained exactly once");
    Ensemble::from_members(members.into_iter().map(|(_, net)| net).collect())
}

/// Tag space for the master–worker protocol.
const TAG_REQUEST: u32 = 100;
const TAG_ASSIGN: u32 = 101;
const TAG_RESULT: u32 = 102;
/// Sentinel task id meaning "no more work".
const DONE: usize = usize::MAX;

/// Dynamic **master–worker** (self-scheduling) task distribution: rank 0
/// dispatches task indices to workers on demand, so slow tasks do not
/// stall a whole block — the classic alternative to the static block
/// assignment when task costs vary (and the natural substrate for the
/// "reassign resources" variation).
///
/// `work(task)` runs on a worker for every `task ∈ 0..tasks`; results
/// return in task order. With one rank, the master executes everything
/// itself. Also returns how many tasks each rank executed.
pub fn master_worker<T, F>(tasks: usize, ranks: usize, work: F) -> (Vec<T>, Vec<usize>)
where
    T: Send + ByteSized + 'static,
    F: Fn(usize) -> T + Send + Sync,
{
    assert!(ranks >= 1);
    let mut outputs = Cluster::run(ranks, |comm| {
        let size = comm.size();
        if size == 1 {
            // Degenerate case: no workers; the master does the work.
            let results: Vec<(usize, T)> = (0..tasks).map(|t| (t, work(t))).collect();
            return Some((results, vec![tasks]));
        }
        if comm.rank() == 0 {
            // Master: hand out tasks on request, collect results.
            let mut next = 0usize;
            let mut results: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
            let mut executed = vec![0usize; size];
            let mut outstanding = 0usize;
            let mut active_workers = size - 1;
            while active_workers > 0 {
                let (worker, msg): (usize, Option<(usize, T)>) = comm.recv_any(TAG_REQUEST);
                if let Some((task, value)) = msg {
                    results[task] = Some(value);
                    executed[worker] += 1;
                    outstanding -= 1;
                }
                if next < tasks {
                    comm.send(worker, TAG_ASSIGN, next);
                    next += 1;
                    outstanding += 1;
                } else {
                    comm.send(worker, TAG_ASSIGN, DONE);
                    active_workers -= 1;
                }
            }
            debug_assert_eq!(outstanding, 0);
            let _ = TAG_RESULT;
            Some((
                results
                    .into_iter()
                    .enumerate()
                    .map(|(t, r)| (t, r.expect("task completed")))
                    .collect(),
                executed,
            ))
        } else {
            // Worker: request, execute, return result with next request.
            let mut last: Option<(usize, T)> = None;
            loop {
                comm.send(0, TAG_REQUEST, last.take());
                let task: usize = comm.recv(0, TAG_ASSIGN);
                if task == DONE {
                    break;
                }
                last = Some((task, work(task)));
            }
            None
        }
    });
    let (pairs, executed) = outputs.swap_remove(0).expect("master assembled results");
    let mut values: Vec<Option<T>> = pairs.into_iter().map(|(_, v)| Some(v)).collect();
    (
        values
            .iter_mut()
            .map(|v| v.take().expect("present"))
            .collect(),
        executed,
    )
}

/// The "interesting variation": train in generations, and after each
/// generation *kill* the fraction of models with the worst validation
/// accuracy, reassigning their resources (the survivors train longer).
///
/// Returns the surviving ensemble and the per-generation survivor counts.
pub fn train_with_culling(
    config: &NetConfig,
    tc: &TrainConfig,
    m: usize,
    generations: usize,
    cull_fraction: f64,
    train: &LabeledDataset,
    validation: &LabeledDataset,
) -> (Ensemble, Vec<usize>) {
    assert!(m >= 1 && generations >= 1);
    assert!(
        (0.0..1.0).contains(&cull_fraction),
        "cull fraction in [0,1)"
    );
    let mut members: Vec<DenseNet> = (0..m)
        .map(|i| {
            let seed = tc
                .seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15);
            DenseNet::new(config, seed)
        })
        .collect();
    let mut history = Vec::with_capacity(generations);
    for gen in 0..generations {
        use rayon::prelude::*;
        members.par_iter_mut().enumerate().for_each(|(i, net)| {
            let seed = tc.seed.wrapping_add((gen * m + i) as u64);
            net.train(train, &TrainConfig { seed, ..*tc });
        });
        // Record the population that actually trained this generation.
        history.push(members.len());
        if gen + 1 < generations {
            // Rank by validation accuracy; drop the worst fraction (at
            // least one survivor always remains).
            let mut scored: Vec<(f64, DenseNet)> = members
                .drain(..)
                .map(|net| (net.accuracy(validation), net))
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite accuracy"));
            let keep = ((scored.len() as f64) * (1.0 - cull_fraction))
                .ceil()
                .max(1.0) as usize;
            scored.truncate(keep);
            members = scored.into_iter().map(|(_, net)| net).collect();
        }
    }
    (Ensemble::from_members(members), history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn block_assignment_covers_all_tasks() {
        // The paper's exact scenario: tasks not divisible by ranks.
        for (tasks, ranks) in [(10usize, 3usize), (10, 4), (10, 6), (7, 7), (3, 8)] {
            let mut seen = vec![0u32; tasks];
            for r in 0..ranks {
                for t in block_assignment(tasks, ranks, r) {
                    seen[t] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "tasks={tasks} ranks={ranks}: {seen:?}"
            );
        }
    }

    #[test]
    fn block_loads_differ_by_at_most_one() {
        for (tasks, ranks) in [(10usize, 3usize), (11, 4), (100, 7)] {
            let loads: Vec<usize> = (0..ranks)
                .map(|r| block_assignment(tasks, ranks, r).len())
                .collect();
            let max = loads.iter().max().unwrap();
            let min = loads.iter().min().unwrap();
            assert!(max - min <= 1, "{loads:?}");
        }
    }

    #[test]
    fn round_robin_covers_all_tasks() {
        for (tasks, ranks) in [(10usize, 3usize), (5, 8), (9, 2)] {
            let mut seen = vec![0u32; tasks];
            for r in 0..ranks {
                for t in round_robin_assignment(tasks, ranks, r) {
                    seen[t] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn imbalance_metric() {
        assert_eq!(imbalance(&[2, 2, 2]), 1.0);
        assert!((imbalance(&[4, 3, 3, 3, 3]) - 4.0 / 3.2).abs() < 1e-12);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn distributed_training_equals_local_ensemble() {
        // Same seeds → the distributed ensemble must equal the rayon one.
        let data = gaussian_blobs(200, 4, 3, 0.8, 30);
        let config = NetConfig {
            layers: vec![4, 8, 3],
        };
        let tc = TrainConfig {
            epochs: 3,
            batch: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 7,
        };
        let local = Ensemble::train(&config, &tc, 5, &data);
        let distributed = distribute_training(&config, &tc, 5, 3, &data);
        assert_eq!(distributed.len(), 5);
        let x = data.points.row(0);
        assert_eq!(local.member_probs(x), distributed.member_probs(x));
    }

    #[test]
    fn distributed_training_rank_count_invariant() {
        let data = gaussian_blobs(150, 4, 3, 0.8, 31);
        let config = NetConfig {
            layers: vec![4, 8, 3],
        };
        let tc = TrainConfig {
            epochs: 2,
            batch: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 8,
        };
        let x = data.points.row(3);
        let reference = distribute_training(&config, &tc, 10, 1, &data).member_probs(x);
        for ranks in [3, 4, 6] {
            let probs = distribute_training(&config, &tc, 10, ranks, &data).member_probs(x);
            assert_eq!(probs, reference, "ranks = {ranks}");
        }
    }

    #[test]
    fn master_worker_returns_all_results_in_order() {
        for ranks in [1usize, 2, 3, 5] {
            let (results, executed) = master_worker(13, ranks, |t| t * t);
            assert_eq!(
                results,
                (0..13).map(|t| t * t).collect::<Vec<_>>(),
                "ranks={ranks}"
            );
            assert_eq!(executed.iter().sum::<usize>(), 13);
            if ranks > 1 {
                assert_eq!(executed[0], 0, "master must not execute tasks");
            }
        }
    }

    #[test]
    fn master_worker_zero_tasks() {
        let (results, executed) = master_worker(0, 4, |_| 0u32);
        assert!(results.is_empty());
        assert_eq!(executed.iter().sum::<usize>(), 0);
    }

    #[test]
    fn master_worker_balances_uneven_costs() {
        // One pathological task (index 0) costs ~50× a normal one; dynamic
        // scheduling must let other workers absorb the rest meanwhile.
        let (results, executed) = master_worker(40, 5, |t| {
            let spin = if t == 0 { 2_000_000 } else { 40_000 };
            let mut acc = t as u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert_eq!(results.len(), 40);
        // Every worker got at least one task (no starvation on 4 workers/40 tasks).
        for (rank, &count) in executed.iter().enumerate().skip(1) {
            assert!(count >= 1, "worker {rank} starved: {executed:?}");
        }
    }

    #[test]
    fn master_worker_trains_an_ensemble() {
        // The assignment's real use: models as tasks.
        let data = gaussian_blobs(150, 4, 3, 0.8, 34);
        let config = NetConfig {
            layers: vec![4, 8, 3],
        };
        let tc = TrainConfig {
            epochs: 2,
            batch: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 11,
        };
        let (members, _) = master_worker(5, 3, |task| {
            let seed = tc
                .seed
                .wrapping_add(task as u64)
                .wrapping_mul(0x9e3779b97f4a7c15);
            let mut net = DenseNet::new(&config, seed);
            net.train(&data, &TrainConfig { seed, ..tc });
            net
        });
        let dynamic = Ensemble::from_members(members);
        // Same seeds → identical to the static block-distributed ensemble.
        let static_ens = distribute_training(&config, &tc, 5, 3, &data);
        let x = data.points.row(0);
        assert_eq!(dynamic.member_probs(x), static_ens.member_probs(x));
    }

    #[test]
    fn culling_shrinks_population() {
        let all = gaussian_blobs(260, 4, 3, 0.8, 32);
        let train = all.select(&(0..200).collect::<Vec<_>>());
        let val = all.select(&(200..260).collect::<Vec<_>>());
        let config = NetConfig {
            layers: vec![4, 8, 3],
        };
        let tc = TrainConfig {
            epochs: 2,
            batch: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 9,
        };
        let (ens, history) = train_with_culling(&config, &tc, 8, 3, 0.5, &train, &val);
        assert_eq!(history, vec![8, 4, 2]);
        assert_eq!(ens.len(), 2);
    }

    #[test]
    fn culling_never_extinct() {
        let all = gaussian_blobs(120, 4, 2, 0.8, 33);
        let train = all.select(&(0..100).collect::<Vec<_>>());
        let val = all.select(&(100..120).collect::<Vec<_>>());
        let config = NetConfig {
            layers: vec![4, 6, 2],
        };
        let tc = TrainConfig {
            epochs: 1,
            batch: 16,
            lr: 0.1,
            momentum: 0.9,
            seed: 10,
        };
        let (ens, _) = train_with_culling(&config, &tc, 2, 5, 0.9, &train, &val);
        assert!(!ens.is_empty());
    }
}
