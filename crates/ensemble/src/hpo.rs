//! Random-search hyper-parameter optimization.
//!
//! The assignment's framing: "we generate these intermediate models while
//! performing Hyper-parameter Optimization (HPO) so uncertainty evaluation
//! is essentially free … we use the best-performing models to identify
//! both the uncertainty and optimal hyperparameters." [`random_search`]
//! trains every sampled configuration (in parallel), scores on a
//! validation set, and returns both the best configuration *and* an
//! ensemble of the top-M models.

use peachy_data::matrix::LabeledDataset;
use peachy_prng::{Lcg64, RandomStream, UniformF64, UniformU64};
use rayon::prelude::*;

use crate::ensemble::Ensemble;
use crate::nn::{DenseNet, NetConfig, TrainConfig};

/// Search-space bounds and budget.
#[derive(Debug, Clone, Copy)]
pub struct HpoConfig {
    /// Configurations to sample.
    pub candidates: usize,
    /// Ensemble size assembled from the best candidates.
    pub ensemble_size: usize,
    /// Hidden-layer width range (inclusive, exclusive).
    pub hidden: (usize, usize),
    /// Log₁₀ learning-rate range.
    pub log10_lr: (f64, f64),
    /// Batch-size choices.
    pub batches: &'static [usize],
    /// Epochs per candidate (fixed training budget).
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for HpoConfig {
    fn default() -> Self {
        Self {
            candidates: 8,
            ensemble_size: 4,
            hidden: (8, 64),
            log10_lr: (-2.0, -0.5),
            batches: &[8, 16, 32],
            epochs: 3,
            seed: 1,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Hidden width sampled.
    pub hidden: usize,
    /// Learning rate sampled.
    pub lr: f64,
    /// Batch size sampled.
    pub batch: usize,
    /// Validation accuracy after training.
    pub val_accuracy: f64,
}

/// Outcome of a search: the scored candidates (descending accuracy) and
/// the free ensemble of the best models.
#[derive(Debug)]
pub struct HpoResult {
    /// All candidates, best first.
    pub candidates: Vec<Candidate>,
    /// Ensemble of the top `ensemble_size` models.
    pub ensemble: Ensemble,
}

impl HpoResult {
    /// The winning configuration.
    pub fn best(&self) -> &Candidate {
        &self.candidates[0]
    }
}

/// Run the search: sample, train all candidates in parallel, score, keep
/// the top models as the ensemble.
pub fn random_search(
    hpo: &HpoConfig,
    input_dim: usize,
    classes: usize,
    train: &LabeledDataset,
    validation: &LabeledDataset,
) -> HpoResult {
    assert!(hpo.candidates >= 1);
    assert!(hpo.ensemble_size >= 1 && hpo.ensemble_size <= hpo.candidates);
    assert!(!hpo.batches.is_empty());
    // Sample configurations up front (sequential, deterministic).
    let mut rng = Lcg64::seed_from(hpo.seed);
    let hidden_dist = UniformU64::new(hpo.hidden.0 as u64, hpo.hidden.1 as u64);
    let lr_dist = UniformF64::new(hpo.log10_lr.0, hpo.log10_lr.1);
    let batch_dist = UniformU64::new(0, hpo.batches.len() as u64);
    let samples: Vec<(usize, f64, usize, u64)> = (0..hpo.candidates)
        .map(|i| {
            (
                hidden_dist.sample(&mut rng) as usize,
                10f64.powf(lr_dist.sample(&mut rng)),
                hpo.batches[batch_dist.sample(&mut rng) as usize],
                hpo.seed
                    .wrapping_add(i as u64 + 1)
                    .wrapping_mul(0x9e3779b97f4a7c15),
            )
        })
        .collect();

    // Train and score candidates in parallel — each is an independent task.
    let mut scored: Vec<(Candidate, DenseNet)> = samples
        .into_par_iter()
        .map(|(hidden, lr, batch, seed)| {
            let config = NetConfig {
                layers: vec![input_dim, hidden, classes],
            };
            let mut net = DenseNet::new(&config, seed);
            net.train(
                train,
                &TrainConfig {
                    epochs: hpo.epochs,
                    batch,
                    lr,
                    momentum: 0.9,
                    seed,
                },
            );
            let val_accuracy = net.accuracy(validation);
            (
                Candidate {
                    hidden,
                    lr,
                    batch,
                    val_accuracy,
                },
                net,
            )
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.val_accuracy
            .partial_cmp(&a.0.val_accuracy)
            .expect("finite accuracy")
            .then(a.0.hidden.cmp(&b.0.hidden))
    });
    let members: Vec<DenseNet> = scored
        .iter()
        .take(hpo.ensemble_size)
        .map(|(_, net)| net.clone())
        .collect();
    HpoResult {
        candidates: scored.into_iter().map(|(c, _)| c).collect(),
        ensemble: Ensemble::from_members(members),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::synth::gaussian_blobs;

    fn split() -> (LabeledDataset, LabeledDataset) {
        let all = gaussian_blobs(400, 5, 3, 0.7, 40);
        (
            all.select(&(0..300).collect::<Vec<_>>()),
            all.select(&(300..400).collect::<Vec<_>>()),
        )
    }

    fn quick_hpo(seed: u64) -> HpoConfig {
        HpoConfig {
            candidates: 5,
            ensemble_size: 3,
            hidden: (6, 20),
            log10_lr: (-1.5, -0.7),
            batches: &[16],
            epochs: 3,
            seed,
        }
    }

    #[test]
    fn search_returns_sorted_candidates() {
        let (train, val) = split();
        let result = random_search(&quick_hpo(1), 5, 3, &train, &val);
        assert_eq!(result.candidates.len(), 5);
        for w in result.candidates.windows(2) {
            assert!(w[0].val_accuracy >= w[1].val_accuracy);
        }
        assert_eq!(result.ensemble.len(), 3);
    }

    #[test]
    fn candidates_within_bounds() {
        let (train, val) = split();
        let hpo = quick_hpo(2);
        let result = random_search(&hpo, 5, 3, &train, &val);
        for c in &result.candidates {
            assert!(c.hidden >= 6 && c.hidden < 20);
            assert!(c.lr >= 10f64.powf(-1.5) && c.lr <= 10f64.powf(-0.7));
            assert_eq!(c.batch, 16);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let (train, val) = split();
        let a = random_search(&quick_hpo(3), 5, 3, &train, &val);
        let b = random_search(&quick_hpo(3), 5, 3, &train, &val);
        assert_eq!(a.best().hidden, b.best().hidden);
        assert_eq!(a.best().val_accuracy, b.best().val_accuracy);
        let x = val.points.row(0);
        assert_eq!(a.ensemble.member_probs(x), b.ensemble.member_probs(x));
    }

    #[test]
    fn best_candidate_learns_something() {
        let (train, val) = split();
        let result = random_search(&quick_hpo(4), 5, 3, &train, &val);
        assert!(
            result.best().val_accuracy > 0.7,
            "best = {:?}",
            result.best()
        );
    }
}
