//! Property tests: scheduling coverage and uncertainty invariants.

use peachy_ensemble::{block_assignment, round_robin_assignment, uncertainty};
use proptest::prelude::*;

/// Random probability vector of the given length.
fn prob_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-6f64..1.0, len).prop_map(|raw| {
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / sum).collect()
    })
}

proptest! {
    /// Block assignment partitions tasks for every (tasks, ranks) pair —
    /// including the assignment's "not evenly divisible" cases.
    #[test]
    fn block_partitions(tasks in 0usize..500, ranks in 1usize..32) {
        let mut seen = vec![0u32; tasks];
        let mut loads = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let range = block_assignment(tasks, ranks, r);
            loads.push(range.len());
            for t in range {
                seen[t] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        prop_assert!(max - min <= 1, "block loads must differ by ≤ 1: {:?}", loads);
    }

    /// Round-robin also partitions, with the same balance bound.
    #[test]
    fn round_robin_partitions(tasks in 0usize..500, ranks in 1usize..32) {
        let mut seen = vec![0u32; tasks];
        for r in 0..ranks {
            for t in round_robin_assignment(tasks, ranks, r) {
                seen[t] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Uncertainty decomposition invariants for arbitrary ensembles:
    /// MI ≥ 0, MI ≤ H(mean), mean is a distribution, ln(C) bounds entropy.
    #[test]
    fn uncertainty_invariants(
        members in prop::collection::vec(prob_vec(4), 1..8),
    ) {
        let r = uncertainty::report(&members);
        prop_assert!((r.mean_probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(r.mutual_information >= 0.0);
        prop_assert!(r.mutual_information <= r.predictive_entropy + 1e-12);
        prop_assert!(r.predictive_entropy <= 4f64.ln() + 1e-12);
        prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0);
        prop_assert!((0..4).contains(&(r.predicted as usize)));
        // Jensen: H(mean) >= mean(H) for the entropy function (concavity).
        prop_assert!(r.predictive_entropy + 1e-9 >= r.expected_entropy);
    }

    /// Entropy is maximal for the uniform distribution.
    #[test]
    fn entropy_bounded_by_uniform(p in prob_vec(6)) {
        let h = uncertainty::entropy(&p);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= 6f64.ln() + 1e-12);
    }
}
