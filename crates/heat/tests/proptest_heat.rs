//! Property tests: solver equivalence and PDE invariants for arbitrary
//! problems and locale counts.

use peachy_heat::{
    solve_coforall, solve_forall, solve_serial, BlockDist, HeatProblem, InitialCondition,
};
use proptest::prelude::*;

fn problem_strategy() -> impl Strategy<Value = HeatProblem> {
    (
        4usize..120,
        0.05f64..0.5,
        0usize..60,
        -2.0f64..2.0,
        -2.0f64..2.0,
        prop_oneof![
            (1u32..4).prop_map(InitialCondition::SineMode),
            Just(InitialCondition::StepPulse),
            (0.02f64..0.3).prop_map(InitialCondition::Gaussian),
            Just(InitialCondition::Zero),
        ],
    )
        .prop_map(|(n, alpha, nt, left, right, ic)| HeatProblem {
            n,
            alpha,
            nt,
            left,
            right,
            ic,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three solvers agree bitwise for any problem and locale count.
    #[test]
    fn solvers_bit_identical(p in problem_strategy(), locales in 1usize..10) {
        let serial = solve_serial(&p);
        prop_assert_eq!(&solve_forall(&p, locales), &serial);
        prop_assert_eq!(&solve_coforall(&p, locales), &serial);
    }

    /// Maximum principle: the solution stays inside the hull of initial +
    /// boundary data (for stable alpha).
    #[test]
    fn maximum_principle(p in problem_strategy()) {
        let initial = p.initial();
        let lo = initial.iter().cloned().fold(f64::INFINITY, f64::min).min(p.left).min(p.right);
        let hi = initial.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(p.left).max(p.right);
        for v in solve_serial(&p) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{} outside [{}, {}]", v, lo, hi);
        }
    }

    /// Boundaries hold their Dirichlet values at every step count.
    #[test]
    fn boundaries_pinned(p in problem_strategy(), locales in 1usize..6) {
        let u = solve_coforall(&p, locales);
        prop_assert_eq!(u[0], p.left);
        prop_assert_eq!(u[p.n - 1], p.right);
    }

    /// The block distribution partitions any domain for any locale count.
    #[test]
    fn blockdist_partitions(n in 1usize..5000, locales in 1usize..64) {
        let dist = BlockDist::new(n, locales);
        let mut covered = 0;
        for l in 0..dist.parts() {
            let r = dist.local_range(l);
            prop_assert_eq!(r.start, covered);
            prop_assert!(!r.is_empty());
            covered = r.end;
        }
        prop_assert_eq!(covered, n);
        // owner_of is the inverse of local_range.
        for probe in [0, n / 3, n / 2, n - 1] {
            let l = dist.owner_of(probe);
            prop_assert!(dist.local_range(l).contains(&probe));
        }
    }

    /// Exact eigenmode decay for arbitrary mode numbers and sizes.
    #[test]
    fn eigenmode_exactness(n in 8usize..100, k in 1u32..4, nt in 1usize..200) {
        let p = HeatProblem { n, alpha: 0.25, nt, left: 0.0, right: 0.0, ic: InitialCondition::SineMode(k) };
        let got = solve_serial(&p);
        let exact = p.exact_sine_solution().unwrap();
        for (g, e) in got.iter().zip(&exact) {
            prop_assert!((g - e).abs() < 1e-10, "{} vs {}", g, e);
        }
    }
}
