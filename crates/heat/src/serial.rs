//! The serial reference solver (the assignment's `Example1.chpl` before
//! distribution).

use crate::problem::HeatProblem;

/// Solve by explicit stepping with double buffering ("swap u and un").
pub fn solve_serial(problem: &HeatProblem) -> Vec<f64> {
    let mut u = problem.initial();
    let mut un = u.clone();
    let n = problem.n;
    let alpha = problem.alpha;
    for _ in 0..problem.nt {
        std::mem::swap(&mut u, &mut un);
        // Compute the new step (in u) from the old (in un), interior only.
        for x in 1..n - 1 {
            u[x] = un[x] + alpha * (un[x - 1] - 2.0 * un[x] + un[x + 1]);
        }
        // Dirichlet boundaries persist.
        u[0] = problem.left;
        u[n - 1] = problem.right;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{HeatProblem, InitialCondition};

    #[test]
    fn matches_exact_eigenmode_solution() {
        let p = HeatProblem::validation(65, 200);
        let got = solve_serial(&p);
        let exact = p.exact_sine_solution().unwrap();
        for (g, e) in got.iter().zip(&exact) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn zero_steps_returns_initial() {
        let p = HeatProblem {
            nt: 0,
            ..HeatProblem::validation(33, 0)
        };
        assert_eq!(solve_serial(&p), p.initial());
    }

    #[test]
    fn heat_diffuses_towards_uniform() {
        let p = HeatProblem {
            n: 101,
            alpha: 0.25,
            nt: 20_000,
            left: 0.0,
            right: 0.0,
            ic: InitialCondition::StepPulse,
        };
        let u = solve_serial(&p);
        // The slowest mode decays as (1 − 4α sin²(π/200))^nt ≈ e^{-4.9}:
        // long after, the rod is nearly uniform zero.
        assert!(
            u.iter().all(|&v| v.abs() < 0.05),
            "max = {}",
            u.iter().fold(0.0f64, |a, &b| a.max(b.abs()))
        );
    }

    #[test]
    fn boundary_driving_heats_the_rod() {
        let p = HeatProblem {
            n: 51,
            alpha: 0.25,
            nt: 20_000,
            left: 1.0,
            right: 1.0,
            ic: InitialCondition::Zero,
        };
        let u = solve_serial(&p);
        // Steady state of constant boundaries is the constant itself.
        for &v in &u {
            assert!((v - 1.0).abs() < 1e-3, "steady state: {v}");
        }
    }

    #[test]
    fn maximum_principle() {
        // Values stay within [min, max] of initial+boundary data.
        let p = HeatProblem {
            n: 64,
            alpha: 0.5,
            nt: 300,
            left: 0.2,
            right: -0.1,
            ic: InitialCondition::Gaussian(0.05),
        };
        let u = solve_serial(&p);
        for &v in &u {
            assert!(
                (-0.1 - 1e-12..=1.0 + 1e-12).contains(&v),
                "principle violated: {v}"
            );
        }
    }

    #[test]
    fn total_heat_decays_monotonically_with_zero_bc() {
        let mut p = HeatProblem::validation(65, 0);
        let mut last = f64::INFINITY;
        for nt in [0usize, 10, 50, 200] {
            p.nt = nt;
            let total: f64 = solve_serial(&p).iter().sum();
            assert!(total <= last + 1e-12);
            last = total;
        }
    }
}
