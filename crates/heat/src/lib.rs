//! # peachy-heat
//!
//! The 1-D heat equation solver of §6, reproducing both halves of the
//! Chapel assignment with simulated *locales*:
//!
//! * **Part 1 — `forall` over a Block distribution**
//!   ([`forall::solve_forall`]): a high-level data-parallel solver. The
//!   global array is split by a [`BlockDist`] (the workspace-wide
//!   [`peachy_cluster::dist::Block`] distribution) into evenly-sized
//!   contiguous blocks, one per locale; every time step spawns a fresh set
//!   of tasks (one per locale block) exactly as Chapel's `forall` does —
//!   simple, but it pays task create/destroy overhead per step.
//!
//! * **Part 2 — `coforall` with explicit synchronization**
//!   ([`coforall::solve_coforall`]): one persistent task per locale,
//!   spawned once (`coforall loc in Locales do on loc`), each owning a
//!   *local* array (distributed memory), sharing edge values through a
//!   global array of **halo cells**, and synchronizing with a reusable
//!   **barrier** each step. More code, less overhead — the trade-off the
//!   assignment teaches.
//!
//! The update is the standard explicit finite difference
//!
//! ```text
//! u'[x] = u[x] + α (u[x−1] − 2 u[x] + u[x+1])
//! ```
//!
//! with Dirichlet boundaries. Every cell reads only previous-step values,
//! so all three solvers (serial reference included) are **bit-identical**
//! regardless of the number of locales — asserted by the test-suite — and
//! correctness is validated against the exact discrete eigenmode solution.

// Numeric kernels below use explicit index loops deliberately: they mirror
// the assignments' pseudocode and keep stencil/neighbour indexing visible.
#![allow(clippy::needless_range_loop)]

pub mod coforall;
pub mod distributed;
pub mod forall;
pub mod heat2d;
pub mod problem;
pub mod serial;

pub use coforall::solve_coforall;
/// The Chapel-style balanced block distribution, now shared workspace-wide.
/// Re-exported under its historical heat-crate name.
pub use peachy_cluster::dist::Block as BlockDist;
pub use distributed::solve_distributed;
pub use forall::solve_forall;
pub use problem::{HeatProblem, InitialCondition};
pub use serial::solve_serial;
