//! Part 1: the `forall` + Block-distribution solver.
//!
//! Every time step spawns one task per locale block (Chapel's `forall`
//! creates and destroys its tasks each time it runs — the overhead the
//! assignment's part 2 eliminates). Blocks are disjoint slices of the
//! global array, so the step is data-race-free by construction.

use crate::problem::HeatProblem;
use crate::BlockDist;

/// Statistics of a `forall` run, for the overhead comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForallStats {
    /// Total tasks spawned (steps × locales).
    pub tasks_spawned: u64,
}

/// Solve with per-step task spawning over `locales` blocks.
pub fn solve_forall(problem: &HeatProblem, locales: usize) -> Vec<f64> {
    solve_forall_stats(problem, locales).0
}

/// As [`solve_forall`], also returning spawn statistics.
pub fn solve_forall_stats(problem: &HeatProblem, locales: usize) -> (Vec<f64>, ForallStats) {
    let mut u = problem.initial();
    let mut un = u.clone();
    let n = problem.n;
    let alpha = problem.alpha;
    let interior = n - 2;
    let dist = BlockDist::new(interior, locales);
    let mut tasks_spawned = 0u64;

    for _ in 0..problem.nt {
        std::mem::swap(&mut u, &mut un);
        let src = &un;
        // Carve the interior of `u` into per-locale disjoint slices.
        let mut rest = &mut u[1..n - 1];
        let mut blocks: Vec<(usize, &mut [f64])> = Vec::with_capacity(dist.parts());
        let mut offset = 0;
        for l in 0..dist.parts() {
            let range = dist.local_range(l);
            let (block, tail) = rest.split_at_mut(range.len());
            blocks.push((offset, block));
            rest = tail;
            offset += range.len();
        }
        // The forall: one task per block, spawned this step, joined at the
        // end of the step (scope exit).
        rayon::scope(|s| {
            for (start, block) in blocks {
                tasks_spawned += 1;
                s.spawn(move |_| {
                    for (i, cell) in block.iter_mut().enumerate() {
                        let x = 1 + start + i; // global index
                        *cell = src[x] + alpha * (src[x - 1] - 2.0 * src[x] + src[x + 1]);
                    }
                });
            }
        });
        u[0] = problem.left;
        u[n - 1] = problem.right;
    }
    (u, ForallStats { tasks_spawned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{HeatProblem, InitialCondition};
    use crate::serial::solve_serial;

    #[test]
    fn bit_identical_to_serial_any_locales() {
        let p = HeatProblem {
            n: 257,
            alpha: 0.25,
            nt: 50,
            left: 0.3,
            right: -0.2,
            ic: InitialCondition::Gaussian(0.08),
        };
        let reference = solve_serial(&p);
        for locales in [1usize, 2, 3, 7, 16, 255] {
            let got = solve_forall(&p, locales);
            assert_eq!(got, reference, "locales = {locales}");
        }
    }

    #[test]
    fn matches_exact_solution() {
        let p = HeatProblem::validation(129, 300);
        let got = solve_forall(&p, 4);
        let exact = p.exact_sine_solution().unwrap();
        for (g, e) in got.iter().zip(&exact) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn spawn_count_is_steps_times_locales() {
        let p = HeatProblem::validation(64, 25);
        let (_, stats) = solve_forall_stats(&p, 4);
        assert_eq!(stats.tasks_spawned, 25 * 4);
    }

    #[test]
    fn more_locales_than_interior_points() {
        let p = HeatProblem::validation(5, 10); // 3 interior points
        let got = solve_forall(&p, 64);
        assert_eq!(got, solve_serial(&p));
    }
}
