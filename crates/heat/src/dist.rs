//! Chapel-style Block distribution over simulated locales.
//!
//! `Block.createDomain({0..<n})` maps a 1-D index space onto `numLocales`
//! evenly-sized contiguous blocks. [`BlockDist`] is that map: given a
//! global index, which locale owns it; given a locale, which contiguous
//! range it owns.

/// A block distribution of `0..n` over `locales` memory domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist {
    n: usize,
    locales: usize,
}

impl BlockDist {
    /// Create a distribution; requires at least one index and one locale.
    pub fn new(n: usize, locales: usize) -> Self {
        assert!(n > 0, "empty domain");
        assert!(locales > 0, "need at least one locale");
        Self {
            n,
            locales: locales.min(n),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of locales actually used (clipped to `n`).
    pub fn locales(&self) -> usize {
        self.locales
    }

    /// The contiguous range owned by `locale` (first `n % locales` locales
    /// hold one extra element — Chapel's balanced block rule).
    pub fn local_range(&self, locale: usize) -> std::ops::Range<usize> {
        assert!(locale < self.locales, "locale {locale} out of range");
        let base = self.n / self.locales;
        let extra = self.n % self.locales;
        let start = locale * base + locale.min(extra);
        start..(start + base + usize::from(locale < extra))
    }

    /// The locale owning global index `i`.
    pub fn locale_of(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of domain");
        let base = self.n / self.locales;
        let extra = self.n % self.locales;
        let boundary = extra * (base + 1);
        if i < boundary {
            i / (base + 1)
        } else {
            extra + (i - boundary) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_domain() {
        for n in [1usize, 7, 10, 100, 1001] {
            for locales in [1usize, 2, 3, 8, 16] {
                let dist = BlockDist::new(n, locales);
                let mut next = 0;
                for l in 0..dist.locales() {
                    let r = dist.local_range(l);
                    assert_eq!(r.start, next, "n={n} locales={locales} l={l}");
                    next = r.end;
                    assert!(!r.is_empty(), "every used locale owns something");
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn locale_of_agrees_with_ranges() {
        for n in [5usize, 17, 64] {
            for locales in [1usize, 2, 5, 7] {
                let dist = BlockDist::new(n, locales);
                for i in 0..n {
                    let l = dist.locale_of(i);
                    assert!(
                        dist.local_range(l).contains(&i),
                        "n={n} locales={locales} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_locales_than_indices_clipped() {
        let dist = BlockDist::new(3, 10);
        assert_eq!(dist.locales(), 3);
        assert_eq!(dist.local_range(0), 0..1);
        assert_eq!(dist.local_range(2), 2..3);
    }

    #[test]
    fn balanced_sizes() {
        let dist = BlockDist::new(10, 4);
        let sizes: Vec<usize> = (0..4).map(|l| dist.local_range(l).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }
}
