//! Problem definition and exact discrete reference solutions.

/// Initial conditions for the rod.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialCondition {
    /// `sin(k·π·x/(n−1))` — an exact eigenmode of the discrete operator,
    /// used for validation.
    SineMode(u32),
    /// A hot middle third, cold elsewhere.
    StepPulse,
    /// A Gaussian bump centred mid-rod with the given width fraction.
    Gaussian(f64),
    /// Everything zero (boundary-driven problems).
    Zero,
}

/// A 1-D heat problem: rod discretization, diffusivity, step count,
/// Dirichlet boundary values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatProblem {
    /// Number of grid points (including the two boundary points).
    pub n: usize,
    /// Diffusion number `α = κ·Δt/Δx²`; stable iff `α ≤ 0.5`.
    pub alpha: f64,
    /// Number of time steps.
    pub nt: usize,
    /// Fixed value at the left boundary.
    pub left: f64,
    /// Fixed value at the right boundary.
    pub right: f64,
    /// Initial interior condition.
    pub ic: InitialCondition,
}

impl HeatProblem {
    /// A standard validation problem: first sine eigenmode, zero
    /// boundaries.
    pub fn validation(n: usize, nt: usize) -> Self {
        Self {
            n,
            alpha: 0.25,
            nt,
            left: 0.0,
            right: 0.0,
            ic: InitialCondition::SineMode(1),
        }
    }

    /// Materialize the initial array (boundaries included).
    pub fn initial(&self) -> Vec<f64> {
        assert!(self.n >= 3, "need at least one interior point");
        assert!(
            self.alpha > 0.0 && self.alpha <= 0.5,
            "explicit scheme unstable for alpha > 0.5"
        );
        let n = self.n;
        let mut u = vec![0.0; n];
        match self.ic {
            InitialCondition::SineMode(k) => {
                let k = k as f64;
                for (x, v) in u.iter_mut().enumerate() {
                    *v = (k * std::f64::consts::PI * x as f64 / (n - 1) as f64).sin();
                }
            }
            InitialCondition::StepPulse => {
                for (x, v) in u.iter_mut().enumerate() {
                    *v = if x >= n / 3 && x < 2 * n / 3 {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            InitialCondition::Gaussian(width) => {
                let c = (n - 1) as f64 / 2.0;
                let w = width * (n - 1) as f64;
                for (x, v) in u.iter_mut().enumerate() {
                    let d = (x as f64 - c) / w;
                    *v = (-d * d).exp();
                }
            }
            InitialCondition::Zero => {}
        }
        u[0] = self.left;
        u[n - 1] = self.right;
        u
    }

    /// The exact solution after `nt` steps for [`InitialCondition::SineMode`]
    /// with zero boundaries: the mode decays by
    /// `λ = 1 − 4α·sin²(kπ / (2(n−1)))` per step.
    pub fn exact_sine_solution(&self) -> Option<Vec<f64>> {
        let k = match self.ic {
            InitialCondition::SineMode(k) if self.left == 0.0 && self.right == 0.0 => k as f64,
            _ => return None,
        };
        let n = self.n;
        let half_angle = k * std::f64::consts::PI / (2.0 * (n - 1) as f64);
        let lambda = 1.0 - 4.0 * self.alpha * half_angle.sin().powi(2);
        let decay = lambda.powi(self.nt as i32);
        Some(
            (0..n)
                .map(|x| decay * (k * std::f64::consts::PI * x as f64 / (n - 1) as f64).sin())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_respects_boundaries() {
        let p = HeatProblem {
            n: 11,
            alpha: 0.25,
            nt: 1,
            left: 3.0,
            right: -2.0,
            ic: InitialCondition::StepPulse,
        };
        let u = p.initial();
        assert_eq!(u[0], 3.0);
        assert_eq!(u[10], -2.0);
    }

    #[test]
    fn sine_mode_zero_at_ends() {
        let p = HeatProblem::validation(65, 10);
        let u = p.initial();
        assert_eq!(u[0], 0.0);
        assert!((u[64]).abs() < 1e-12);
        // Peak near the middle.
        assert!(u[32] > 0.99);
    }

    #[test]
    fn gaussian_peak_at_centre() {
        let p = HeatProblem {
            n: 101,
            alpha: 0.25,
            nt: 1,
            left: 0.0,
            right: 0.0,
            ic: InitialCondition::Gaussian(0.1),
        };
        let u = p.initial();
        assert!((u[50] - 1.0).abs() < 1e-9);
        assert!(u[10] < 0.01);
    }

    #[test]
    fn exact_solution_decays() {
        let p = HeatProblem::validation(33, 100);
        let exact = p.exact_sine_solution().unwrap();
        let initial = p.initial();
        assert!(exact[16].abs() < initial[16].abs());
        assert!(
            exact[16] > 0.0,
            "first mode keeps its sign under stable stepping"
        );
    }

    #[test]
    fn exact_only_for_sine_zero_bc() {
        let p = HeatProblem {
            n: 11,
            alpha: 0.25,
            nt: 1,
            left: 1.0,
            right: 0.0,
            ic: InitialCondition::SineMode(1),
        };
        assert!(p.exact_sine_solution().is_none());
        let p = HeatProblem {
            n: 11,
            alpha: 0.25,
            nt: 1,
            left: 0.0,
            right: 0.0,
            ic: InitialCondition::Zero,
        };
        assert!(p.exact_sine_solution().is_none());
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_alpha_rejected() {
        HeatProblem {
            n: 10,
            alpha: 0.6,
            nt: 1,
            left: 0.0,
            right: 0.0,
            ic: InitialCondition::Zero,
        }
        .initial();
    }
}
