//! The truly distributed solver: locales as message-passing ranks.
//!
//! The Chapel assignment's part 2 runs "across multiple compute nodes";
//! [`solve_distributed`] takes the [`crate::coforall`] structure the rest
//! of the way — each locale is a [`peachy_cluster`] rank owning its block
//! in a *separate address space*, halo values travel as point-to-point
//! **messages** instead of shared halo cells, and the per-step barrier is
//! implicit in the blocking receives (a rank cannot start step `t+1`
//! before its neighbours' step-`t` edges arrive). Results remain
//! bit-identical to the serial solver for any rank count.

use peachy_cluster::{Cluster, Shared};

use crate::problem::HeatProblem;
use crate::BlockDist;

/// Tags for the edge-value exchange: a value travelling to the sender's
/// right neighbour vs to its left neighbour.
const TAG_TO_RIGHT: u32 = 1;
const TAG_TO_LEFT: u32 = 2;

/// Solve over `locales` message-passing ranks; the root assembles and
/// returns the final global array.
pub fn solve_distributed(problem: &HeatProblem, locales: usize) -> Vec<f64> {
    let initial = problem.initial();
    let n = problem.n;
    let alpha = problem.alpha;
    let interior = n - 2;
    let dist = BlockDist::new(interior, locales);
    let nl = dist.parts();

    let mut results = Cluster::run(nl, |comm| {
        let l = comm.rank();
        let range = dist.local_range(l);
        let len = range.len();
        // The root owns the initial condition and broadcasts it as a
        // shared payload: the tree fan-out moves one `Arc` per edge, not
        // one copy of the full array per child. Each rank slices only its
        // own region out of the shared handle.
        let ic = comm.broadcast_shared(
            0,
            Shared::new(if l == 0 { initial.clone() } else { Vec::new() }),
        );
        let mut local = vec![0.0f64; len + 2];
        let mut local_new = vec![0.0f64; len + 2];
        local[1..=len].copy_from_slice(&ic[1 + range.start..1 + range.end]);
        local[0] = ic[range.start];
        local[len + 1] = ic[1 + range.end];
        drop(ic);

        for _ in 0..problem.nt {
            for i in 1..=len {
                local_new[i] = local[i] + alpha * (local[i - 1] - 2.0 * local[i] + local[i + 1]);
            }
            // Halo exchange by message: send edges, then receive ghosts.
            if l > 0 {
                comm.send(l - 1, TAG_TO_LEFT, local_new[1]);
            }
            if l + 1 < nl {
                comm.send(l + 1, TAG_TO_RIGHT, local_new[len]);
            }
            local_new[0] = if l == 0 {
                problem.left
            } else {
                comm.recv::<f64>(l - 1, TAG_TO_RIGHT)
            };
            local_new[len + 1] = if l + 1 == nl {
                problem.right
            } else {
                comm.recv::<f64>(l + 1, TAG_TO_LEFT)
            };
            std::mem::swap(&mut local, &mut local_new);
        }

        comm.gather(0, local[1..=len].to_vec())
    });

    let blocks = results.swap_remove(0).expect("root gathered blocks");
    let mut out = Vec::with_capacity(n);
    out.push(problem.left);
    for b in blocks {
        out.extend(b);
    }
    out.push(problem.right);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{HeatProblem, InitialCondition};
    use crate::serial::solve_serial;

    #[test]
    fn bit_identical_to_serial_any_rank_count() {
        let p = HeatProblem {
            n: 300,
            alpha: 0.25,
            nt: 80,
            left: 0.7,
            right: -0.3,
            ic: InitialCondition::StepPulse,
        };
        let reference = solve_serial(&p);
        for locales in [1usize, 2, 3, 5, 8] {
            assert_eq!(
                solve_distributed(&p, locales),
                reference,
                "locales = {locales}"
            );
        }
    }

    #[test]
    fn matches_coforall_and_forall() {
        let p = HeatProblem::validation(129, 60);
        let a = solve_distributed(&p, 4);
        assert_eq!(a, crate::coforall::solve_coforall(&p, 4));
        assert_eq!(a, crate::forall::solve_forall(&p, 4));
    }

    #[test]
    fn matches_exact_solution() {
        let p = HeatProblem::validation(65, 150);
        let got = solve_distributed(&p, 3);
        let exact = p.exact_sine_solution().unwrap();
        for (g, e) in got.iter().zip(&exact) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn block_of_length_one_per_rank() {
        let p = HeatProblem {
            n: 7,
            alpha: 0.3,
            nt: 30,
            left: 1.0,
            right: 0.0,
            ic: InitialCondition::Zero,
        };
        assert_eq!(solve_distributed(&p, 5), solve_serial(&p));
    }

    #[test]
    fn zero_steps() {
        let p = HeatProblem {
            nt: 0,
            ..HeatProblem::validation(33, 0)
        };
        assert_eq!(solve_distributed(&p, 4), p.initial());
    }
}
