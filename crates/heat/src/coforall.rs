//! Part 2: the `coforall` solver — persistent tasks, local arrays, halo
//! cells, and a reusable barrier.
//!
//! Mirrors `Example2.chpl` and its distributed completion:
//!
//! * `coforall loc in Locales do on loc { taskSimulate(...) }` — one task
//!   per locale, spawned **once** for the whole simulation (here: one OS
//!   thread per locale);
//! * each task owns a *local* array covering its block plus two ghost
//!   cells ("array and range slices are used to copy the initial
//!   conditions into each task's local array");
//! * a global array of **halo cells** carries edge values: "at each time
//!   step, tasks store the values along their edges in their neighbors'
//!   halo cells, then copy the neighbors' values into their own local
//!   array";
//! * a **barrier** separates the write-halo and read-halo phases (and the
//!   read phase from the next step's writes).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use crate::problem::HeatProblem;
use crate::BlockDist;

/// One locale's pair of incoming halo cells, written by its neighbours.
struct Halo {
    /// Value arriving from the left neighbour (its rightmost edge value).
    from_left: AtomicU64,
    /// Value arriving from the right neighbour (its leftmost edge value).
    from_right: AtomicU64,
}

impl Halo {
    fn new() -> Self {
        Self {
            from_left: AtomicU64::new(0.0f64.to_bits()),
            from_right: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

/// Solve with one persistent task per locale and explicit halo exchange.
pub fn solve_coforall(problem: &HeatProblem, locales: usize) -> Vec<f64> {
    let initial = problem.initial();
    let n = problem.n;
    let alpha = problem.alpha;
    let interior = n - 2;
    let dist = BlockDist::new(interior, locales);
    let nl = dist.parts();

    let halos: Vec<Halo> = (0..nl).map(|_| Halo::new()).collect();
    let barrier = Barrier::new(nl);

    // Each locale returns its final local block; blocks reassemble in
    // locale order.
    let mut blocks: Vec<Option<Vec<f64>>> = (0..nl).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nl)
            .map(|l| {
                let range = dist.local_range(l); // interior-relative
                let initial = &initial;
                let halos = &halos;
                let barrier = &barrier;
                scope.spawn(move || {
                    // Local array: [left ghost, block..., right ghost].
                    let len = range.len();
                    let mut local = vec![0.0f64; len + 2];
                    let mut local_new = vec![0.0f64; len + 2];
                    // Copy initial conditions via slices (global interior
                    // index range.start..range.end maps to global array
                    // 1+range.start..1+range.end).
                    local[1..=len].copy_from_slice(&initial[1 + range.start..1 + range.end]);
                    local[0] = initial[range.start]; // left ghost (global idx range.start)
                    local[len + 1] = initial[1 + range.end]; // right ghost

                    for _ in 0..problem.nt {
                        // Compute the new block from the old block + ghosts.
                        for i in 1..=len {
                            local_new[i] =
                                local[i] + alpha * (local[i - 1] - 2.0 * local[i] + local[i + 1]);
                        }
                        // Store edge values in the neighbours' halo cells.
                        if l > 0 {
                            halos[l - 1]
                                .from_right
                                .store(local_new[1].to_bits(), Ordering::Release);
                        }
                        if l + 1 < nl {
                            halos[l + 1]
                                .from_left
                                .store(local_new[len].to_bits(), Ordering::Release);
                        }
                        // All edges written before anyone reads.
                        barrier.wait();
                        // Copy the neighbours' values into the local ghosts;
                        // physical boundaries are the Dirichlet constants.
                        local_new[0] = if l == 0 {
                            problem.left
                        } else {
                            f64::from_bits(halos[l].from_left.load(Ordering::Acquire))
                        };
                        local_new[len + 1] = if l + 1 == nl {
                            problem.right
                        } else {
                            f64::from_bits(halos[l].from_right.load(Ordering::Acquire))
                        };
                        std::mem::swap(&mut local, &mut local_new);
                        // Everyone has read their halos before the next
                        // step's writes overwrite them.
                        barrier.wait();
                    }
                    local[1..=len].to_vec()
                })
            })
            .collect();
        for (l, h) in handles.into_iter().enumerate() {
            blocks[l] = Some(h.join().expect("locale task panicked"));
        }
    });

    // Reassemble the global array.
    let mut out = Vec::with_capacity(n);
    out.push(problem.left);
    for b in blocks {
        out.extend(b.expect("all locales completed"));
    }
    out.push(problem.right);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forall::solve_forall;
    use crate::problem::{HeatProblem, InitialCondition};
    use crate::serial::solve_serial;

    #[test]
    fn bit_identical_to_serial_any_locales() {
        let p = HeatProblem {
            n: 200,
            alpha: 0.3,
            nt: 60,
            left: 1.0,
            right: 0.5,
            ic: InitialCondition::StepPulse,
        };
        let reference = solve_serial(&p);
        for locales in [1usize, 2, 3, 5, 8, 64] {
            let got = solve_coforall(&p, locales);
            assert_eq!(got, reference, "locales = {locales}");
        }
    }

    #[test]
    fn matches_exact_solution() {
        let p = HeatProblem::validation(129, 250);
        let got = solve_coforall(&p, 6);
        let exact = p.exact_sine_solution().unwrap();
        for (g, e) in got.iter().zip(&exact) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn agrees_with_forall() {
        let p = HeatProblem {
            n: 150,
            alpha: 0.25,
            nt: 40,
            left: -0.5,
            right: 0.25,
            ic: InitialCondition::Gaussian(0.1),
        };
        assert_eq!(solve_coforall(&p, 5), solve_forall(&p, 5));
    }

    #[test]
    fn single_locale_is_serial() {
        let p = HeatProblem::validation(65, 30);
        assert_eq!(solve_coforall(&p, 1), solve_serial(&p));
    }

    #[test]
    fn tiny_blocks() {
        // Interior of 4 points over 4 locales: every block has length 1,
        // both ghosts of a block come from halos.
        let p = HeatProblem {
            n: 6,
            alpha: 0.25,
            nt: 25,
            left: 1.0,
            right: 0.0,
            ic: InitialCondition::Zero,
        };
        assert_eq!(solve_coforall(&p, 4), solve_serial(&p));
    }

    #[test]
    fn zero_steps() {
        let p = HeatProblem {
            nt: 0,
            ..HeatProblem::validation(33, 0)
        };
        assert_eq!(solve_coforall(&p, 3), p.initial());
    }
}
