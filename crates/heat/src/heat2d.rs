//! 2-D heat equation — the natural extension once the 1-D assignment is
//! done (Chapel's Block distribution is dimension-generic; the course's
//! "other variations" reach for exactly this).
//!
//! The update is the 5-point explicit stencil
//!
//! ```text
//! u'[y][x] = u[y][x] + α (u[y][x−1] + u[y][x+1] + u[y−1][x] + u[y+1][x] − 4 u[y][x])
//! ```
//!
//! stable for `α ≤ 0.25`, with Dirichlet boundaries on the rectangle's
//! frame. The distribution is by **row blocks** (the 1-D Block
//! distribution applied to the y-axis), which keeps halo exchange to two
//! row vectors per block per step. Both solvers are bit-identical to the
//! serial reference for any locale count, and validated against the exact
//! separable eigenmode `sin(kπx/(W−1))·sin(lπy/(H−1))`.

use rayon::prelude::*;

use crate::BlockDist;

/// A 2-D heat problem on an `h × w` grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heat2dProblem {
    /// Grid width (including boundary columns).
    pub w: usize,
    /// Grid height (including boundary rows).
    pub h: usize,
    /// Diffusion number; stable iff `α ≤ 0.25` in 2-D.
    pub alpha: f64,
    /// Time steps.
    pub nt: usize,
    /// Mode numbers of the initial condition `sin(kπx/(W−1))·sin(lπy/(H−1))`.
    pub mode: (u32, u32),
}

impl Heat2dProblem {
    /// A standard validation problem.
    pub fn validation(w: usize, h: usize, nt: usize) -> Self {
        Self {
            w,
            h,
            alpha: 0.2,
            nt,
            mode: (1, 1),
        }
    }

    /// Materialize the initial grid (row-major), zero boundary.
    pub fn initial(&self) -> Vec<f64> {
        assert!(self.w >= 3 && self.h >= 3, "need interior points");
        assert!(
            self.alpha > 0.0 && self.alpha <= 0.25,
            "2-D explicit scheme unstable for alpha > 0.25"
        );
        let (k, l) = (self.mode.0 as f64, self.mode.1 as f64);
        let mut u = vec![0.0; self.w * self.h];
        for y in 1..self.h - 1 {
            for x in 1..self.w - 1 {
                u[y * self.w + x] = (k * std::f64::consts::PI * x as f64 / (self.w - 1) as f64)
                    .sin()
                    * (l * std::f64::consts::PI * y as f64 / (self.h - 1) as f64).sin();
            }
        }
        u
    }

    /// Exact solution after `nt` steps: the mode decays per step by
    /// `λ = 1 − 4α(sin²(kπ/(2(W−1))) + sin²(lπ/(2(H−1))))`.
    pub fn exact(&self) -> Vec<f64> {
        let (k, l) = (self.mode.0 as f64, self.mode.1 as f64);
        let sx = (k * std::f64::consts::PI / (2.0 * (self.w - 1) as f64)).sin();
        let sy = (l * std::f64::consts::PI / (2.0 * (self.h - 1) as f64)).sin();
        let lambda = 1.0 - 4.0 * self.alpha * (sx * sx + sy * sy);
        let decay = lambda.powi(self.nt as i32);
        self.initial().into_iter().map(|v| v * decay).collect()
    }
}

/// Serial reference solver.
pub fn solve2d_serial(p: &Heat2dProblem) -> Vec<f64> {
    let mut u = p.initial();
    let mut un = u.clone();
    let (w, h, alpha) = (p.w, p.h, p.alpha);
    for _ in 0..p.nt {
        std::mem::swap(&mut u, &mut un);
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                u[i] =
                    un[i] + alpha * (un[i - 1] + un[i + 1] + un[i - w] + un[i + w] - 4.0 * un[i]);
            }
        }
        // Zero Dirichlet frame is preserved automatically (never written).
    }
    u
}

/// Parallel solver: interior rows block-distributed over `locales`, one
/// task per row block per step (the 2-D `forall`). Bit-identical to the
/// serial solver — every cell reads only previous-step values.
pub fn solve2d_forall(p: &Heat2dProblem, locales: usize) -> Vec<f64> {
    let mut u = p.initial();
    let mut un = u.clone();
    let (w, h, alpha) = (p.w, p.h, p.alpha);
    let interior_rows = h - 2;
    let dist = BlockDist::new(interior_rows, locales);
    for _ in 0..p.nt {
        std::mem::swap(&mut u, &mut un);
        let src = &un;
        // Split interior rows into per-locale disjoint row-block slices.
        let interior = &mut u[w..(h - 1) * w];
        let mut blocks: Vec<(usize, &mut [f64])> = Vec::with_capacity(dist.parts());
        let mut rest = interior;
        let mut row0 = 0;
        for l in 0..dist.parts() {
            let rows = dist.local_range(l).len();
            let (head, tail) = rest.split_at_mut(rows * w);
            blocks.push((row0, head));
            rest = tail;
            row0 += rows;
        }
        blocks.into_par_iter().for_each(|(start_row, block)| {
            for (r, row) in block.chunks_exact_mut(w).enumerate() {
                let y = 1 + start_row + r; // global row
                for x in 1..w - 1 {
                    let i = y * w + x;
                    row[x] = src[i]
                        + alpha
                            * (src[i - 1] + src[i + 1] + src[i - w] + src[i + w] - 4.0 * src[i]);
                }
                // Boundary columns of this row stay zero.
                row[0] = 0.0;
                row[w - 1] = 0.0;
            }
        });
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_eigenmode() {
        let p = Heat2dProblem::validation(33, 25, 200);
        let got = solve2d_serial(&p);
        for (g, e) in got.iter().zip(&p.exact()) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn forall_bit_identical_to_serial() {
        let p = Heat2dProblem {
            w: 41,
            h: 29,
            alpha: 0.25,
            nt: 60,
            mode: (2, 3),
        };
        let reference = solve2d_serial(&p);
        for locales in [1usize, 2, 3, 8, 27] {
            assert_eq!(
                solve2d_forall(&p, locales),
                reference,
                "locales = {locales}"
            );
        }
    }

    #[test]
    fn boundary_stays_zero() {
        let p = Heat2dProblem::validation(21, 17, 50);
        let u = solve2d_forall(&p, 4);
        for x in 0..21 {
            assert_eq!(u[x], 0.0);
            assert_eq!(u[16 * 21 + x], 0.0);
        }
        for y in 0..17 {
            assert_eq!(u[y * 21], 0.0);
            assert_eq!(u[y * 21 + 20], 0.0);
        }
    }

    #[test]
    fn heat_decays_monotonically() {
        let mut last = f64::INFINITY;
        for nt in [0usize, 20, 100, 400] {
            let p = Heat2dProblem {
                nt,
                ..Heat2dProblem::validation(25, 25, 0)
            };
            let total: f64 = solve2d_serial(&p).iter().map(|v| v.abs()).sum();
            assert!(total <= last + 1e-9);
            last = total;
        }
    }

    #[test]
    fn higher_modes_decay_faster() {
        let low = Heat2dProblem {
            mode: (1, 1),
            ..Heat2dProblem::validation(33, 33, 100)
        };
        let high = Heat2dProblem {
            mode: (3, 3),
            ..Heat2dProblem::validation(33, 33, 100)
        };
        let peak = |u: &[f64]| u.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(peak(&solve2d_serial(&high)) < peak(&solve2d_serial(&low)));
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_alpha_rejected() {
        Heat2dProblem {
            w: 10,
            h: 10,
            alpha: 0.3,
            nt: 1,
            mode: (1, 1),
        }
        .initial();
    }
}
