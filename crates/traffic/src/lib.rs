//! # peachy-traffic
//!
//! The Nagel–Schreckenberg stochastic traffic model — the §5 Peachy
//! assignment: "creating a shared-memory parallel **and reproducible**
//! version of a serial code implementing this model".
//!
//! The model simulates `N` cars on a circular road of `L` cells. Each time
//! step applies, synchronously to every car:
//!
//! 1. **Accelerate**: `v ← min(v + 1, v_max)`;
//! 2. **Brake**: `v ← min(v, gap)` where `gap` is the number of empty
//!    cells to the car ahead;
//! 3. **Randomize**: with probability `p`, `v ← max(v − 1, 0)` — the
//!    stochastic element "without which it would lack realistic phenomena
//!    such as traffic jams";
//! 4. **Move**: `x ← (x + v) mod L`.
//!
//! ## The reproducibility contract
//!
//! Each car consumes **exactly one** random draw per step, in car order, so
//! the simulation's draw stream is addressable: car `i` at step `t` uses
//! draw `t·N + i`. The parallel stepper exploits this with the fast-forward
//! generator of [`peachy_prng`]: each worker jumps its own generator copy
//! directly to its chunk's offset, making the parallel output **bit
//! -identical to the serial code for any number of threads** — the
//! assignment's central requirement. The contrast case (each thread with
//! its own seed — simple but thread-count-dependent) is also provided as
//! [`parallel::step_parallel_substreams`].
//!
//! Two state representations are implemented, as the assignment discusses:
//! the **agent-based** [`AgentRoad`] (positions + velocities of N cars —
//! "significantly simplifies the parallelization of PRNG") and the **grid**
//! [`grid::GridRoad`] (a value for every road cell). They are equivalent,
//! and the test-suite asserts step-for-step agreement.
//!
//! ```
//! use peachy_traffic::{AgentRoad, RoadConfig};
//!
//! let config = RoadConfig { length: 100, cars: 20, v_max: 5, p: 0.13, seed: 1 };
//! let mut serial = AgentRoad::new(&config);
//! let mut parallel = AgentRoad::new(&config);
//! for step in 0..50 {
//!     serial.step_serial(step);
//!     parallel.step_parallel(step, 4); // 4 chunks
//! }
//! assert_eq!(serial.positions(), parallel.positions());
//! ```

// Numeric kernels below use explicit index loops deliberately: they mirror
// the assignments' pseudocode and keep stencil/neighbour indexing visible.
#![allow(clippy::needless_range_loop)]

pub mod distributed;
pub mod gpu;
pub mod grid;
pub mod measure;
pub mod open;
pub mod output;
pub mod parallel;
pub mod raster;
pub mod road;
pub mod sweep;

pub use distributed::run_distributed;
pub use measure::{flow, fundamental_diagram, jam_fraction, FlowStats};
pub use open::{OpenRoad, OpenRoadConfig};
pub use raster::SpaceTime;
pub use road::{AgentRoad, RoadConfig};
pub use sweep::{capacity_curve, run_sweep, run_sweep_farm, SweepPoint};
