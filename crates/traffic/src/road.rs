//! The agent-based road: the canonical state representation.

use peachy_prng::{FastForward, Lcg64, RandomStream};

/// Simulation parameters (Figure 3 of the paper uses `length: 1000,
/// cars: 200, v_max: 5, p: 0.13`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadConfig {
    /// Number of cells on the circular road.
    pub length: usize,
    /// Number of cars (must be ≤ `length`).
    pub cars: usize,
    /// Maximum velocity in cells per step.
    pub v_max: u32,
    /// Random-deceleration probability per car per step.
    pub p: f64,
    /// Simulation seed: determines initial placement and the shared
    /// deceleration stream.
    pub seed: u64,
}

impl RoadConfig {
    /// The exact Figure-3 configuration from the paper.
    pub fn figure3(seed: u64) -> Self {
        Self {
            length: 1000,
            cars: 200,
            v_max: 5,
            p: 0.13,
            seed,
        }
    }

    /// Car density `N / L`.
    pub fn density(&self) -> f64 {
        self.cars as f64 / self.length as f64
    }
}

/// Agent-based state: car positions and velocities, ordered around the
/// ring (cars never overtake, so the order is invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct AgentRoad {
    config: RoadConfig,
    /// Cell index of each car, ascending at construction.
    positions: Vec<usize>,
    /// Velocity of each car.
    velocities: Vec<u32>,
}

impl AgentRoad {
    /// Place `cars` cars evenly around the ring with zero velocity.
    ///
    /// Even placement is deterministic given the config and leaves the
    /// entire seed-addressed draw stream to the per-step decelerations —
    /// the property the parallel stepper depends on.
    pub fn new(config: &RoadConfig) -> Self {
        assert!(config.length > 0, "road must have cells");
        assert!(
            config.cars > 0 && config.cars <= config.length,
            "0 < cars <= length"
        );
        assert!((0.0..=1.0).contains(&config.p), "p must be a probability");
        let positions = (0..config.cars)
            .map(|i| i * config.length / config.cars)
            .collect::<Vec<_>>();
        Self {
            config: *config,
            positions,
            velocities: vec![0; config.cars],
        }
    }

    /// Internal constructor from raw parts (validated by callers).
    pub(crate) fn from_parts(
        config: RoadConfig,
        positions: Vec<usize>,
        velocities: Vec<u32>,
    ) -> Self {
        Self {
            config,
            positions,
            velocities,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RoadConfig {
        &self.config
    }

    /// Car positions (cell indices), in car order.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Car velocities, in car order.
    pub fn velocities(&self) -> &[u32] {
        &self.velocities
    }

    /// Gap (empty cells) between car `i` and the car ahead of it.
    #[inline]
    pub fn gap_ahead(&self, i: usize) -> usize {
        let n = self.positions.len();
        if n == 1 {
            return self.config.length - 1; // alone on the ring
        }
        let ahead = (i + 1) % n;
        let delta =
            (self.positions[ahead] + self.config.length - self.positions[i]) % self.config.length;
        debug_assert!(delta > 0, "two cars share a cell");
        delta - 1
    }

    /// One serial step. `step_index` addresses the draw stream: car `i`
    /// consumes draw `step_index·N + i` of the generator seeded with
    /// `config.seed`.
    pub fn step_serial(&mut self, step_index: u64) {
        let n = self.positions.len();
        let mut rng = Lcg64::seed_from(self.config.seed);
        rng.jump(step_index * n as u64);
        self.step_with_draws(|_, _| rng.next_f64());
    }

    /// Apply one synchronous update, obtaining car `i`'s uniform draw from
    /// `draw(i, old_velocity)`. Used by both serial and parallel steppers.
    pub(crate) fn step_with_draws<F: FnMut(usize, u32) -> f64>(&mut self, mut draw: F) {
        let n = self.positions.len();
        // Phase 1 (synchronous): new velocities from the *old* state.
        let mut new_v = vec![0u32; n];
        for i in 0..n {
            let mut v = (self.velocities[i] + 1).min(self.config.v_max);
            v = v.min(self.gap_ahead(i) as u32);
            // One draw per car per step, unconditionally: the draw stream
            // must be consumed even when v == 0, or the stream addressing
            // (t·N + i) would depend on the state.
            let u = draw(i, v);
            if u < self.config.p && v > 0 {
                v -= 1;
            }
            new_v[i] = v;
        }
        // Phase 2: move.
        for i in 0..n {
            self.velocities[i] = new_v[i];
            self.positions[i] = (self.positions[i] + new_v[i] as usize) % self.config.length;
        }
    }

    /// Run `steps` serial steps starting from step index `start`.
    pub fn run_serial(&mut self, start: u64, steps: u64) {
        for s in 0..steps {
            self.step_serial(start + s);
        }
    }

    /// Sum of current velocities (cells travelled this step).
    pub fn total_velocity(&self) -> u64 {
        self.velocities.iter().map(|&v| v as u64).sum()
    }

    /// Number of stopped cars.
    pub fn stopped(&self) -> usize {
        self.velocities.iter().filter(|&&v| v == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RoadConfig {
        RoadConfig {
            length: 30,
            cars: 6,
            v_max: 3,
            p: 0.2,
            seed: 5,
        }
    }

    #[test]
    fn even_placement() {
        let road = AgentRoad::new(&tiny());
        assert_eq!(road.positions(), &[0, 5, 10, 15, 20, 25]);
        assert!(road.velocities().iter().all(|&v| v == 0));
    }

    #[test]
    fn gap_wraps_around_ring() {
        let road = AgentRoad::new(&tiny());
        // Last car's gap to car 0 wraps: 0 + 30 - 25 - 1 = 4.
        assert_eq!(road.gap_ahead(5), 4);
        assert_eq!(road.gap_ahead(0), 4);
    }

    #[test]
    fn single_car_gap() {
        let config = RoadConfig {
            length: 10,
            cars: 1,
            v_max: 5,
            p: 0.0,
            seed: 1,
        };
        let road = AgentRoad::new(&config);
        assert_eq!(road.gap_ahead(0), 9);
    }

    #[test]
    fn cars_never_collide() {
        let mut road = AgentRoad::new(&RoadConfig {
            length: 50,
            cars: 25,
            v_max: 5,
            p: 0.3,
            seed: 9,
        });
        for step in 0..500 {
            road.step_serial(step);
            let mut seen = std::collections::HashSet::new();
            for &p in road.positions() {
                assert!(p < 50);
                assert!(seen.insert(p), "collision at step {step}");
            }
        }
    }

    #[test]
    fn order_never_changes() {
        // Cars cannot overtake: the cyclic order of positions is invariant.
        let mut road = AgentRoad::new(&RoadConfig {
            length: 100,
            cars: 10,
            v_max: 5,
            p: 0.2,
            seed: 3,
        });
        for step in 0..300 {
            road.step_serial(step);
            let pos = road.positions();
            // Successive gaps must sum to L - N... simpler: all gaps >= 0 via gap_ahead and
            // total circumference conserved.
            let total: usize = (0..10).map(|i| road.gap_ahead(i) + 1).sum();
            assert_eq!(total, 100, "step {step}: {pos:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let config = tiny();
        let mut a = AgentRoad::new(&config);
        let mut b = AgentRoad::new(&config);
        a.run_serial(0, 100);
        b.run_serial(0, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = AgentRoad::new(&tiny());
        let mut b = AgentRoad::new(&RoadConfig { seed: 6, ..tiny() });
        a.run_serial(0, 100);
        b.run_serial(0, 100);
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn p_zero_reaches_steady_flow() {
        // Deterministic model: all cars converge to v = min(v_max, mean gap).
        let config = RoadConfig {
            length: 60,
            cars: 10,
            v_max: 5,
            p: 0.0,
            seed: 1,
        };
        let mut road = AgentRoad::new(&config);
        road.run_serial(0, 200);
        // Mean spacing 6 → gap 5 → v = 5.
        assert!(
            road.velocities().iter().all(|&v| v == 5),
            "{:?}",
            road.velocities()
        );
    }

    #[test]
    fn velocity_bounded_by_vmax_and_gap() {
        let mut road = AgentRoad::new(&RoadConfig {
            length: 40,
            cars: 20,
            v_max: 4,
            p: 0.1,
            seed: 2,
        });
        for step in 0..200 {
            road.step_serial(step);
            for (i, &v) in road.velocities().iter().enumerate() {
                assert!(v <= 4, "v_max violated at step {step} car {i}");
            }
        }
    }

    #[test]
    fn draws_consumed_unconditionally() {
        // Two configs identical except p; the *positions* differ but the
        // draw alignment means a p=0 run consumes the same stream layout.
        // Verify by checking that step_serial(t) is independent of history:
        // running steps [0,10) then [10,20) equals running [0,20).
        let config = tiny();
        let mut contiguous = AgentRoad::new(&config);
        contiguous.run_serial(0, 20);
        let mut split = AgentRoad::new(&config);
        split.run_serial(0, 10);
        split.run_serial(10, 10);
        assert_eq!(contiguous, split);
    }

    #[test]
    #[should_panic(expected = "0 < cars <= length")]
    fn too_many_cars_rejected() {
        AgentRoad::new(&RoadConfig {
            length: 5,
            cars: 6,
            v_max: 1,
            p: 0.0,
            seed: 0,
        });
    }
}
