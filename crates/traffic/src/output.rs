//! Self-describing simulation output — the §5 variation "adapt the output
//! to use the NetCDF library", using the PCDF container of
//! [`peachy_data::selfdesc`].
//!
//! A recorded run stores the full (time × car) position and velocity
//! arrays, per-step mean velocity, and the complete configuration as
//! attributes — enough for a reader to reconstruct and verify the run
//! without any out-of-band knowledge, which is the point of
//! self-describing formats.

use peachy_data::selfdesc::SelfDescribing;

use crate::road::{AgentRoad, RoadConfig};

/// Simulate `steps` steps and package the trajectory as a self-describing
/// dataset.
pub fn record_run(config: &RoadConfig, steps: u64) -> SelfDescribing {
    let mut road = AgentRoad::new(config);
    let mut positions = Vec::with_capacity(steps as usize * config.cars);
    let mut velocities = Vec::with_capacity(steps as usize * config.cars);
    let mut mean_v = Vec::with_capacity(steps as usize);
    for step in 0..steps {
        road.step_serial(step);
        positions.extend(road.positions().iter().map(|&p| p as f64));
        velocities.extend(road.velocities().iter().map(|&v| v as f64));
        mean_v.push(road.total_velocity() as f64 / config.cars as f64);
    }

    let mut ds = SelfDescribing::default();
    ds.add_attr("model", "nagel-schreckenberg");
    ds.add_attr("length", config.length.to_string());
    ds.add_attr("cars", config.cars.to_string());
    ds.add_attr("v_max", config.v_max.to_string());
    ds.add_attr("p", config.p.to_string());
    ds.add_attr("seed", config.seed.to_string());
    let t = ds.add_dim("time", steps as usize);
    let c = ds.add_dim("car", config.cars);
    ds.add_var("positions", vec![t, c], positions);
    ds.add_var("velocities", vec![t, c], velocities);
    ds.add_var("mean_velocity", vec![t], mean_v);
    ds
}

/// Reconstruct the configuration stored in a recorded run.
pub fn config_from(ds: &SelfDescribing) -> Option<RoadConfig> {
    Some(RoadConfig {
        length: ds.attr("length")?.parse().ok()?,
        cars: ds.attr("cars")?.parse().ok()?,
        v_max: ds.attr("v_max")?.parse().ok()?,
        p: ds.attr("p")?.parse().ok()?,
        seed: ds.attr("seed")?.parse().ok()?,
    })
}

/// Verify a recorded (possibly decoded-from-bytes) run by re-simulating
/// from its own attributes and comparing trajectories. Returns the number
/// of steps verified.
pub fn verify(ds: &SelfDescribing) -> Result<usize, String> {
    let config = config_from(ds).ok_or("missing or unparsable config attributes")?;
    let pos_var = ds.var("positions").ok_or("missing positions variable")?;
    let steps = ds
        .dims
        .get(pos_var.dims[0])
        .map(|d| d.len)
        .ok_or("bad time dim")?;
    let mut road = AgentRoad::new(&config);
    for step in 0..steps {
        road.step_serial(step as u64);
        let row = &pos_var.data[step * config.cars..(step + 1) * config.cars];
        for (car, (&stored, &actual)) in row.iter().zip(road.positions()).enumerate() {
            if stored != actual as f64 {
                return Err(format!("mismatch at step {step}, car {car}"));
            }
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::selfdesc::DecodeError;

    fn config() -> RoadConfig {
        RoadConfig {
            length: 120,
            cars: 30,
            v_max: 4,
            p: 0.15,
            seed: 77,
        }
    }

    #[test]
    fn record_shapes() {
        let ds = record_run(&config(), 25);
        assert_eq!(ds.var("positions").unwrap().data.len(), 25 * 30);
        assert_eq!(ds.var("velocities").unwrap().data.len(), 25 * 30);
        assert_eq!(ds.var("mean_velocity").unwrap().data.len(), 25);
        assert_eq!(ds.attr("p"), Some("0.15"));
    }

    #[test]
    fn byte_roundtrip_then_verify() {
        let ds = record_run(&config(), 20);
        let bytes = ds.encode();
        let back = SelfDescribing::decode(&bytes).unwrap();
        assert_eq!(verify(&back), Ok(20));
    }

    #[test]
    fn config_roundtrip() {
        let ds = record_run(&config(), 5);
        assert_eq!(config_from(&ds), Some(config()));
    }

    #[test]
    fn tampering_detected() {
        let mut ds = record_run(&config(), 10);
        // Corrupt one stored position.
        if let Some(v) = ds.vars.iter_mut().find(|v| v.name == "positions") {
            v.data[42] += 1.0;
        }
        assert!(verify(&ds).is_err());
    }

    #[test]
    fn decode_error_on_truncated_bytes() {
        let bytes = record_run(&config(), 5).encode();
        assert!(matches!(
            SelfDescribing::decode(&bytes[..bytes.len() - 9]),
            Err(DecodeError::Truncated | DecodeError::ShapeMismatch { .. })
        ));
    }
}
