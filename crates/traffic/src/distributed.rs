//! Distributed-memory Nagel–Schreckenberg — the §5 variation "students
//! could implement a distributed-memory parallel code using MPI".
//!
//! Cars are block-partitioned over ranks. Each step, a rank needs exactly
//! one remote datum: the *old* position of the first car of the next block
//! (to compute its last car's gap), exchanged point-to-point around the
//! ring. Velocities use the same fast-forward stream addressing as the
//! shared-memory stepper, so the distributed simulation is **bit-identical
//! to the serial one for any rank count** — the reproducibility
//! requirement carried over to distributed memory.

use peachy_cluster::{dist::block_range, Cluster};
use peachy_prng::{Bernoulli, FastForward, Lcg64, RandomStream};

use crate::road::{AgentRoad, RoadConfig};

/// Tag for the per-step neighbour-position exchange.
const TAG_FIRST_POS: u32 = 1;
/// Tag for shipping a block's car positions at the start.
const TAG_INIT: u32 = 0;

/// Run `steps` steps on `ranks` simulated distributed-memory ranks and
/// return the final road state (gathered at rank 0). Requires
/// `ranks <= config.cars` so every rank owns at least one car.
pub fn run_distributed(config: &RoadConfig, steps: u64, ranks: usize) -> AgentRoad {
    assert!(ranks >= 1, "need at least one rank");
    assert!(ranks <= config.cars, "every rank must own at least one car");
    let n = config.cars;
    let length = config.length;
    let v_max = config.v_max;
    let slow = Bernoulli::new(config.p);
    let seed = config.seed;

    let mut results = Cluster::run(ranks, |comm| {
        let size = comm.size();
        let rank = comm.rank();
        let range = block_range(n, size, rank);
        let block_len = range.len();

        // Rank 0 owns the initial layout and scatters blocks.
        let mut positions: Vec<usize> = if rank == 0 {
            let initial = AgentRoad::new(config);
            for dst in 1..size {
                let r = block_range(n, size, dst);
                comm.send(dst, TAG_INIT, initial.positions()[r].to_vec());
            }
            initial.positions()[range.clone()].to_vec()
        } else {
            comm.recv::<Vec<usize>>(0, TAG_INIT)
        };
        let mut velocities: Vec<u32> = vec![0; block_len];

        let next_rank = (rank + 1) % size;
        let prev_rank = (rank + size - 1) % size;

        for step in 0..steps {
            // Exchange: my first car's old position goes to the previous
            // rank; I receive my successor's first position.
            comm.send(prev_rank, TAG_FIRST_POS, positions[0]);
            let succ_first: usize = comm.recv(next_rank, TAG_FIRST_POS);

            // Fast-forward to this block's slice of the shared stream.
            let mut rng = Lcg64::seed_from(seed);
            rng.jump(step * n as u64 + range.start as u64);

            // Phase 1: velocities from old state.
            let mut new_v = vec![0u32; block_len];
            for i in 0..block_len {
                let ahead_pos = if i + 1 < block_len {
                    positions[i + 1]
                } else {
                    succ_first
                };
                let gap = if n == 1 {
                    length - 1
                } else {
                    (ahead_pos + length - positions[i]) % length - 1
                };
                let mut v = (velocities[i] + 1).min(v_max);
                v = v.min(gap as u32);
                if slow.sample(&mut rng) && v > 0 {
                    v -= 1;
                }
                new_v[i] = v;
            }
            // Phase 2: move.
            for i in 0..block_len {
                velocities[i] = new_v[i];
                positions[i] = (positions[i] + new_v[i] as usize) % length;
            }
        }

        // Gather blocks at the root, in rank order.
        comm.gather(0, (positions, velocities))
    });

    let blocks = results.swap_remove(0).expect("root gathered blocks");
    let mut positions = Vec::with_capacity(n);
    let mut velocities = Vec::with_capacity(n);
    for (p, v) in blocks {
        positions.extend(p);
        velocities.extend(v);
    }
    AgentRoad::from_state(*config, positions, velocities)
}

impl AgentRoad {
    /// Reconstruct a road from explicit state (used by the distributed
    /// gather; positions must be collision-free).
    pub fn from_state(config: RoadConfig, positions: Vec<usize>, velocities: Vec<u32>) -> Self {
        assert_eq!(positions.len(), config.cars);
        assert_eq!(velocities.len(), config.cars);
        let unique: std::collections::HashSet<_> = positions.iter().collect();
        assert_eq!(unique.len(), positions.len(), "cars collide");
        Self::from_parts(config, positions, velocities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RoadConfig {
        RoadConfig {
            length: 400,
            cars: 90,
            v_max: 5,
            p: 0.22,
            seed: 17,
        }
    }

    #[test]
    fn bit_identical_to_serial_for_all_rank_counts() {
        let mut serial = AgentRoad::new(&config());
        serial.run_serial(0, 80);
        for ranks in [1usize, 2, 3, 5, 8] {
            let dist = run_distributed(&config(), 80, ranks);
            assert_eq!(dist.positions(), serial.positions(), "ranks = {ranks}");
            assert_eq!(dist.velocities(), serial.velocities(), "ranks = {ranks}");
        }
    }

    #[test]
    fn matches_shared_memory_parallel() {
        let mut shared = AgentRoad::new(&config());
        shared.run_parallel(0, 50, 4);
        let dist = run_distributed(&config(), 50, 3);
        assert_eq!(dist.positions(), shared.positions());
    }

    #[test]
    fn figure3_configuration() {
        let fig3 = RoadConfig::figure3(7);
        let mut serial = AgentRoad::new(&fig3);
        serial.run_serial(0, 30);
        let dist = run_distributed(&fig3, 30, 8);
        assert_eq!(dist.positions(), serial.positions());
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        let mut serial = AgentRoad::new(&config());
        serial.run_serial(0, 40);
        let dist = run_distributed(&config(), 40, 1);
        assert_eq!(dist.positions(), serial.positions());
    }

    #[test]
    #[should_panic(expected = "at least one car")]
    fn too_many_ranks_rejected() {
        run_distributed(
            &RoadConfig {
                length: 10,
                cars: 3,
                v_max: 2,
                p: 0.1,
                seed: 1,
            },
            1,
            5,
        );
    }

    #[test]
    fn zero_steps_returns_initial() {
        let dist = run_distributed(&config(), 0, 4);
        let initial = AgentRoad::new(&config());
        assert_eq!(dist.positions(), initial.positions());
    }
}
