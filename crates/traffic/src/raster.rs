//! Space–time diagrams: the Figure-3 artifact.
//!
//! Each simulation step contributes one raster row; occupied cells are
//! dark. Jams appear as dense bands drifting *backwards* (against the
//! driving direction) — the signature structure of Figure 3.

use crate::road::AgentRoad;

/// A space–time raster: `steps` rows × `length` columns of occupancy.
#[derive(Debug, Clone)]
pub struct SpaceTime {
    length: usize,
    rows: Vec<Vec<bool>>,
}

impl SpaceTime {
    /// Record `steps` serial steps of a fresh simulation of `config`.
    pub fn record(config: &crate::road::RoadConfig, steps: u64) -> Self {
        let mut road = AgentRoad::new(config);
        let mut rows = Vec::with_capacity(steps as usize);
        for step in 0..steps {
            road.step_serial(step);
            let mut row = vec![false; config.length];
            for &p in road.positions() {
                row[p] = true;
            }
            rows.push(row);
        }
        Self {
            length: config.length,
            rows,
        }
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> usize {
        self.rows.len()
    }

    /// Road length.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Occupancy of cell `x` at recorded step `t`.
    pub fn occupied(&self, t: usize, x: usize) -> bool {
        self.rows[t][x]
    }

    /// ASCII rendering, downsampling columns by `x_stride` and rows by
    /// `t_stride` (a 1000-cell road fits an 80-column terminal with
    /// `x_stride = 13`). Columns are *sampled* (one cell per stride), not
    /// OR-ed: at Figure-3 density an OR over 13 cells would be almost
    /// always dark, hiding the jam bands that sampling preserves.
    pub fn ascii(&self, x_stride: usize, t_stride: usize) -> String {
        assert!(x_stride >= 1 && t_stride >= 1);
        let mut out = String::new();
        for row in self.rows.iter().step_by(t_stride) {
            for x0 in (0..self.length).step_by(x_stride) {
                out.push(if row[x0] { '#' } else { ' ' });
            }
            out.push('\n');
        }
        out
    }

    /// Density-shaded ASCII rendering: each character covers an
    /// `x_stride × t_stride` tile shaded by its mean occupancy. Jams (solid
    /// backwards-drifting bands) survive any downsampling factor.
    pub fn ascii_density(&self, x_stride: usize, t_stride: usize) -> String {
        assert!(x_stride >= 1 && t_stride >= 1);
        const SHADES: [char; 5] = [' ', '.', 'o', '#', '@'];
        let mut out = String::new();
        for t0 in (0..self.rows.len()).step_by(t_stride) {
            for x0 in (0..self.length).step_by(x_stride) {
                let mut occupied = 0usize;
                let mut total = 0usize;
                for row in self.rows[t0..(t0 + t_stride).min(self.rows.len())].iter() {
                    for &b in &row[x0..(x0 + x_stride).min(self.length)] {
                        occupied += usize::from(b);
                        total += 1;
                    }
                }
                let frac = occupied as f64 / total.max(1) as f64;
                // Normalize against full occupancy; 0.5+ occupancy = jam.
                let level = ((frac * 2.0) * (SHADES.len() - 1) as f64).round() as usize;
                out.push(SHADES[level.min(SHADES.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }

    /// Portable PixMap (P1 bitmap) rendering for external viewers.
    pub fn to_pbm(&self) -> String {
        let mut out = format!("P1\n{} {}\n", self.length, self.rows.len());
        for row in &self.rows {
            for &b in row {
                out.push(if b { '1' } else { '0' });
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }

    /// Count "jammed cells": occupied cells whose occupant does not move
    /// before the next recorded row (approximated as cells occupied in two
    /// consecutive rows). The Figure-3 jam bands light this metric up; the
    /// p = 0 control leaves it at ~0 after the transient.
    pub fn persistent_occupancy(&self) -> usize {
        let mut count = 0;
        for t in 1..self.rows.len() {
            for x in 0..self.length {
                if self.rows[t][x] && self.rows[t - 1][x] {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadConfig;

    #[test]
    fn raster_shape() {
        let config = RoadConfig {
            length: 50,
            cars: 10,
            v_max: 3,
            p: 0.1,
            seed: 1,
        };
        let st = SpaceTime::record(&config, 20);
        assert_eq!(st.steps(), 20);
        assert_eq!(st.length(), 50);
        for t in 0..20 {
            let occupied = (0..50).filter(|&x| st.occupied(t, x)).count();
            assert_eq!(occupied, 10, "car count conserved at step {t}");
        }
    }

    #[test]
    fn ascii_dimensions() {
        let config = RoadConfig {
            length: 100,
            cars: 20,
            v_max: 5,
            p: 0.13,
            seed: 2,
        };
        let st = SpaceTime::record(&config, 40);
        let art = st.ascii(5, 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 20);
        assert!(lines.iter().all(|l| l.chars().count() == 20));
    }

    #[test]
    fn pbm_header() {
        let config = RoadConfig {
            length: 30,
            cars: 5,
            v_max: 3,
            p: 0.1,
            seed: 3,
        };
        let st = SpaceTime::record(&config, 10);
        let pbm = st.to_pbm();
        assert!(pbm.starts_with("P1\n30 10\n"));
    }

    #[test]
    fn jams_show_as_persistent_occupancy() {
        // Figure-3 parameters vs. the p = 0 control, after the transient.
        let noisy = RoadConfig::figure3(5);
        let quiet = RoadConfig { p: 0.0, ..noisy };
        // Skip the initial transient by warming up through record length.
        let jammed = SpaceTime::record(&noisy, 400).persistent_occupancy();
        let free = SpaceTime::record(&quiet, 400).persistent_occupancy();
        assert!(
            jammed > free * 3 && jammed > 100,
            "jams must dominate with randomness: jammed={jammed} free={free}"
        );
    }
}
