//! Nagel–Schreckenberg on the simulated GPU — the §5 variation "port the
//! code to use GPUs".
//!
//! One thread per car. Each step is **two kernel launches**: a compute
//! kernel writing next-step state into fresh arrays, then a commit kernel
//! copying next → current. Two launches, not two phases, because phase
//! barriers only synchronize *within* a block — a block that raced ahead
//! to the commit while another block still read old state would corrupt
//! the update. Grid-wide synchronization in CUDA *is* the kernel
//! boundary; this module makes that classic lesson executable.
//!
//! Random decelerations use the same `t·N + i` fast-forward stream as the
//! serial stepper; the host fast-forwards and uploads this step's draws
//! (real CUDA code would use a counter-based generator on-device — the
//! *addressing* is the part that matters for reproducibility, and it is
//! identical). Output is **bit-identical to the serial simulation** for
//! any launch geometry.

use peachy_gpu::{GlobalBuffer, Kernel, Launch, Phase, ThreadCtx};
use peachy_prng::{FastForward, Lcg64, RandomStream};

use crate::road::{AgentRoad, RoadConfig};

/// Word offsets in the device buffer.
struct Layout {
    n: usize,
    length: usize,
    v_max: u32,
    p: f64,
    vel: usize,
    draws: usize,
    new_pos: usize,
    new_vel: usize,
}

impl Layout {
    fn new(config: &RoadConfig) -> Self {
        let n = config.cars;
        Self {
            n,
            length: config.length,
            v_max: config.v_max,
            p: config.p,
            vel: n,
            draws: 2 * n,
            new_pos: 3 * n,
            new_vel: 4 * n,
        }
    }
    fn total(&self) -> usize {
        5 * self.n
    }
}

/// Launch 1: compute next positions/velocities from current state.
struct ComputeStep<'a>(&'a Layout);

impl Kernel for ComputeStep<'_> {
    fn phases(&self) -> usize {
        1
    }
    fn run(&self, _p: Phase, t: ThreadCtx, _s: &mut [f64], g: &GlobalBuffer) {
        let l = self.0;
        let mut i = t.global_id();
        while i < l.n {
            let pos = g.load_u64(i) as usize;
            let ahead = g.load_u64((i + 1) % l.n) as usize;
            let gap = if l.n == 1 {
                l.length - 1
            } else {
                (ahead + l.length - pos) % l.length - 1
            };
            let mut v = (g.load_u64(l.vel + i) as u32 + 1).min(l.v_max);
            v = v.min(gap as u32);
            if g.load(l.draws + i) < l.p && v > 0 {
                v -= 1;
            }
            g.store_u64(l.new_vel + i, v as u64);
            g.store_u64(l.new_pos + i, ((pos + v as usize) % l.length) as u64);
            i += t.grid_span();
        }
    }
}

/// Launch 2: commit next → current (runs only after every block of the
/// compute launch has finished — the kernel boundary is the sync).
struct CommitStep<'a>(&'a Layout);

impl Kernel for CommitStep<'_> {
    fn phases(&self) -> usize {
        1
    }
    fn run(&self, _p: Phase, t: ThreadCtx, _s: &mut [f64], g: &GlobalBuffer) {
        let l = self.0;
        let mut i = t.global_id();
        while i < l.n {
            g.store_u64(i, g.load_u64(l.new_pos + i));
            g.store_u64(l.vel + i, g.load_u64(l.new_vel + i));
            i += t.grid_span();
        }
    }
}

/// Run `steps` steps on the device; returns the final road, bit-identical
/// to [`AgentRoad::run_serial`] from the same configuration.
pub fn run_gpu(config: &RoadConfig, steps: u64, grid: usize, block: usize) -> AgentRoad {
    assert!(grid >= 1 && block >= 1);
    let initial = AgentRoad::new(config);
    let layout = Layout::new(config);
    let g = GlobalBuffer::zeroed(layout.total());
    for (i, &p) in initial.positions().iter().enumerate() {
        g.store_u64(i, p as u64);
        g.store_u64(layout.vel + i, 0);
    }

    let n = config.cars as u64;
    let compute = ComputeStep(&layout);
    let commit = CommitStep(&layout);
    for step in 0..steps {
        // Host uploads this step's slice of the shared draw stream.
        let mut rng = Lcg64::seed_from(config.seed);
        rng.jump(step * n);
        for i in 0..config.cars {
            g.store(layout.draws + i, rng.next_f64());
        }
        Launch {
            grid,
            block,
            shared: 0,
        }
        .run(&compute, &g);
        Launch {
            grid,
            block,
            shared: 0,
        }
        .run(&commit, &g);
    }

    let positions: Vec<usize> = (0..config.cars).map(|i| g.load_u64(i) as usize).collect();
    let velocities: Vec<u32> = (0..config.cars)
        .map(|i| g.load_u64(layout.vel + i) as u32)
        .collect();
    AgentRoad::from_state(*config, positions, velocities)
}

/// Compute kernel with **on-device RNG**: instead of host-uploaded draws,
/// every thread derives car `i`'s step-`t` draw statelessly from the
/// counter-based Philox generator (`Philox::at(t·N + i)`) — the way real
/// CUDA codes solve the reproducible-stream problem (Random123 et al.).
/// No draw upload, no RNG state: the draw is a pure function of its index.
struct ComputeStepOnboard<'a> {
    layout: &'a Layout,
    seed: u64,
    step: u64,
}

impl Kernel for ComputeStepOnboard<'_> {
    fn phases(&self) -> usize {
        1
    }
    fn run(&self, _p: Phase, t: ThreadCtx, _s: &mut [f64], g: &GlobalBuffer) {
        let l = self.layout;
        let rng = peachy_prng::Philox::with_key(self.seed, 0);
        let mut i = t.global_id();
        while i < l.n {
            let pos = g.load_u64(i) as usize;
            let ahead = g.load_u64((i + 1) % l.n) as usize;
            let gap = if l.n == 1 {
                l.length - 1
            } else {
                (ahead + l.length - pos) % l.length - 1
            };
            let mut v = (g.load_u64(l.vel + i) as u32 + 1).min(l.v_max);
            v = v.min(gap as u32);
            // Stateless draw for (step, car): top 53 bits → [0, 1).
            let word = rng.at(self.step * l.n as u64 + i as u64);
            let u = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < l.p && v > 0 {
                v -= 1;
            }
            g.store_u64(l.new_vel + i, v as u64);
            g.store_u64(l.new_pos + i, ((pos + v as usize) % l.length) as u64);
            i += t.grid_span();
        }
    }
}

/// GPU run with on-device Philox draws. Bit-identical to
/// [`run_serial_philox`] (the host reference with the same stream
/// addressing), for any launch geometry.
pub fn run_gpu_onboard_rng(
    config: &RoadConfig,
    steps: u64,
    grid: usize,
    block: usize,
) -> AgentRoad {
    assert!(grid >= 1 && block >= 1);
    let initial = AgentRoad::new(config);
    let layout = Layout::new(config);
    let g = GlobalBuffer::zeroed(layout.total());
    for (i, &p) in initial.positions().iter().enumerate() {
        g.store_u64(i, p as u64);
    }
    let commit = CommitStep(&layout);
    for step in 0..steps {
        let compute = ComputeStepOnboard {
            layout: &layout,
            seed: config.seed,
            step,
        };
        Launch {
            grid,
            block,
            shared: 0,
        }
        .run(&compute, &g);
        Launch {
            grid,
            block,
            shared: 0,
        }
        .run(&commit, &g);
    }
    let positions: Vec<usize> = (0..config.cars).map(|i| g.load_u64(i) as usize).collect();
    let velocities: Vec<u32> = (0..config.cars)
        .map(|i| g.load_u64(layout.vel + i) as u32)
        .collect();
    AgentRoad::from_state(*config, positions, velocities)
}

/// Host reference for the Philox-addressed stream: serial stepping that
/// draws car `i`'s step-`t` value as `Philox::at(t·N + i)`.
pub fn run_serial_philox(config: &RoadConfig, steps: u64) -> AgentRoad {
    let mut road = AgentRoad::new(config);
    let rng = peachy_prng::Philox::with_key(config.seed, 0);
    let n = config.cars as u64;
    for step in 0..steps {
        road.step_with_draws(|i, _| {
            let word = rng.at(step * n + i as u64);
            (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        });
    }
    road
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RoadConfig {
        RoadConfig {
            length: 300,
            cars: 80,
            v_max: 5,
            p: 0.2,
            seed: 55,
        }
    }

    #[test]
    fn bit_identical_to_serial() {
        let mut serial = AgentRoad::new(&config());
        serial.run_serial(0, 60);
        for (grid, block) in [(1usize, 1usize), (2, 16), (8, 32), (3, 7)] {
            let gpu = run_gpu(&config(), 60, grid, block);
            assert_eq!(
                gpu.positions(),
                serial.positions(),
                "grid={grid} block={block}"
            );
            assert_eq!(
                gpu.velocities(),
                serial.velocities(),
                "grid={grid} block={block}"
            );
        }
    }

    #[test]
    fn matches_all_other_backends() {
        let fig3 = RoadConfig::figure3(4);
        let mut serial = AgentRoad::new(&fig3);
        serial.run_serial(0, 25);
        let mut shared = AgentRoad::new(&fig3);
        shared.run_parallel(0, 25, 4);
        let distributed = crate::distributed::run_distributed(&fig3, 25, 4);
        let gpu = run_gpu(&fig3, 25, 4, 64);
        assert_eq!(gpu.positions(), serial.positions());
        assert_eq!(gpu.positions(), shared.positions());
        assert_eq!(gpu.positions(), distributed.positions());
    }

    #[test]
    fn single_car() {
        let c = RoadConfig {
            length: 50,
            cars: 1,
            v_max: 5,
            p: 0.3,
            seed: 9,
        };
        let mut serial = AgentRoad::new(&c);
        serial.run_serial(0, 40);
        assert_eq!(run_gpu(&c, 40, 2, 8).positions(), serial.positions());
    }

    #[test]
    fn zero_steps() {
        let gpu = run_gpu(&config(), 0, 2, 8);
        assert_eq!(gpu.positions(), AgentRoad::new(&config()).positions());
    }

    #[test]
    fn onboard_rng_matches_philox_host_reference() {
        let host = run_serial_philox(&config(), 50);
        for (grid, block) in [(1usize, 1usize), (4, 16), (8, 32)] {
            let gpu = run_gpu_onboard_rng(&config(), 50, grid, block);
            assert_eq!(
                gpu.positions(),
                host.positions(),
                "grid={grid} block={block}"
            );
            assert_eq!(gpu.velocities(), host.velocities());
        }
    }

    #[test]
    fn onboard_rng_is_a_valid_simulation() {
        // Different stream family than Lcg64, so trajectories differ from
        // the host-upload path — but the physics invariants hold.
        let a = run_gpu_onboard_rng(&config(), 80, 4, 16);
        let b = run_gpu(&config(), 80, 4, 16);
        assert_ne!(a.positions(), b.positions(), "distinct RNG families");
        let mut seen = std::collections::HashSet::new();
        for &p in a.positions() {
            assert!(seen.insert(p), "collision");
            assert!(p < 300);
        }
    }
}
