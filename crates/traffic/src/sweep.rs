//! Parameter studies — the §5 variation "run a series of parameter study
//! cases and take advantage of embarrassingly parallel jobs".
//!
//! A sweep is a grid of independent simulations; [`run_sweep`] fans the
//! grid out over the rayon pool (each job is one full simulation — the
//! embarrassing parallelism the assignment points at) and collects a
//! result table. [`run_sweep_farm`] runs the same grid as a §7-style
//! fault-tolerant task farm on the simulated cluster: a killed worker's
//! cells are absorbed by the survivors and the table stays bit-identical.

use peachy_cluster::{task_farm, Cluster, FarmOutcome, FaultPlan, RetryPolicy};
use rayon::prelude::*;

use crate::measure::{flow, FlowStats};
use crate::road::RoadConfig;

/// One cell of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Deceleration probability of this run.
    pub p: f64,
    /// Density (cars / length) of this run.
    pub density: f64,
    /// Measured steady-state statistics.
    pub stats: FlowStats,
}

impl peachy_cluster::ByteSized for SweepPoint {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Sweep the (p × density) grid; one independent simulation per cell, all
/// cells in parallel. Results are in row-major (p-major) grid order
/// regardless of execution order.
pub fn run_sweep(
    length: usize,
    v_max: u32,
    seed: u64,
    ps: &[f64],
    densities: &[f64],
    warmup: u64,
    window: u64,
) -> Vec<SweepPoint> {
    assert!(!ps.is_empty() && !densities.is_empty(), "empty sweep grid");
    let grid: Vec<(f64, f64)> = ps
        .iter()
        .flat_map(|&p| densities.iter().map(move |&rho| (p, rho)))
        .collect();
    grid.into_par_iter()
        .map(|(p, density)| {
            let cars = ((length as f64 * density).round() as usize).clamp(1, length);
            let config = RoadConfig {
                length,
                cars,
                v_max,
                p,
                seed,
            };
            SweepPoint {
                p,
                density,
                stats: flow(&config, warmup, window),
            }
        })
        .collect()
}

/// Run the same (p × density) grid as a self-scheduling task farm on
/// `ranks` simulated cluster ranks under a chaos `plan` (use
/// [`FaultPlan::none`] for a clean run) — the §7 pattern hardened: cells
/// owned by a worker that dies are reassigned per `policy`, and because
/// each cell's simulation is seeded deterministically, the result table is
/// **bit-identical to [`run_sweep`]** in row-major grid order no matter
/// which workers survive.
///
/// Panics if the manager rank itself fails (analogous to losing the
/// `mpirun` launch process).
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_farm(
    ranks: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    length: usize,
    v_max: u32,
    seed: u64,
    ps: &[f64],
    densities: &[f64],
    warmup: u64,
    window: u64,
) -> FarmOutcome<SweepPoint> {
    assert!(!ps.is_empty() && !densities.is_empty(), "empty sweep grid");
    let grid: Vec<(f64, f64)> = ps
        .iter()
        .flat_map(|&p| densities.iter().map(move |&rho| (p, rho)))
        .collect();
    let mut results = Cluster::run_with_plan(ranks, plan, |comm| {
        task_farm(comm, grid.len(), policy, |cell| {
            let (p, density) = grid[cell];
            let cars = ((length as f64 * density).round() as usize).clamp(1, length);
            let config = RoadConfig {
                length,
                cars,
                v_max,
                p,
                seed,
            };
            SweepPoint {
                p,
                density,
                stats: flow(&config, warmup, window),
            }
        })
    });
    results
        .swap_remove(0)
        .unwrap_or_else(|e| panic!("sweep manager failed: {e}"))
        .expect("manager reports the farm outcome")
}

/// Locate the capacity point (maximum flow) for each `p` in a sweep.
/// Returns `(p, density_at_peak, peak_flow)` rows, in `ps` order.
pub fn capacity_curve(points: &[SweepPoint], ps: &[f64]) -> Vec<(f64, f64, f64)> {
    ps.iter()
        .map(|&p| {
            let best = points
                .iter()
                .filter(|pt| pt.p == p)
                .max_by(|a, b| a.stats.flow.partial_cmp(&b.stats.flow).expect("finite"))
                .expect("p present in sweep");
            (p, best.density, best.stats.flow)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_deterministic() {
        let ps = [0.0, 0.2];
        let densities = [0.1, 0.3, 0.6];
        let a = run_sweep(300, 5, 1, &ps, &densities, 100, 100);
        let b = run_sweep(300, 5, 1, &ps, &densities, 100, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        // Row-major: first three cells share p = 0.0.
        assert!(a[..3].iter().all(|pt| pt.p == 0.0));
        assert_eq!(a[1].density, 0.3);
    }

    #[test]
    fn higher_p_lowers_capacity() {
        let ps = [0.0, 0.4];
        let densities = [0.05, 0.1, 0.15, 0.2, 0.3];
        let points = run_sweep(400, 5, 2, &ps, &densities, 200, 200);
        let curve = capacity_curve(&points, &ps);
        assert_eq!(curve.len(), 2);
        assert!(
            curve[0].2 > curve[1].2,
            "p = 0 capacity {} must exceed p = 0.4 capacity {}",
            curve[0].2,
            curve[1].2
        );
    }

    #[test]
    fn densities_respected() {
        let points = run_sweep(200, 5, 3, &[0.1], &[0.25], 50, 50);
        assert_eq!(points[0].stats.density, 50.0 / 200.0);
    }

    #[test]
    #[should_panic(expected = "empty sweep grid")]
    fn empty_grid_rejected() {
        run_sweep(100, 5, 1, &[], &[0.1], 10, 10);
    }

    #[test]
    fn farm_sweep_matches_rayon_sweep() {
        let ps = [0.0, 0.2];
        let densities = [0.1, 0.3];
        let reference = run_sweep(200, 5, 4, &ps, &densities, 50, 50);
        let farmed = run_sweep_farm(
            3,
            &FaultPlan::none(),
            &RetryPolicy::default(),
            200,
            5,
            4,
            &ps,
            &densities,
            50,
            50,
        );
        assert_eq!(farmed.results, reference);
        assert_eq!(farmed.reassigned, 0);
    }

    #[test]
    fn farm_sweep_survives_killed_worker_bit_identically() {
        let ps = [0.0, 0.15, 0.3];
        let densities = [0.1, 0.2, 0.4];
        let reference = run_sweep(150, 5, 8, &ps, &densities, 40, 40);
        for chaos_seed in [1, 2, 3] {
            // Worker 1 dies after its second transport send, mid-farm.
            let plan = FaultPlan::new(chaos_seed).kill(1, 1);
            let farmed = run_sweep_farm(
                3,
                &plan,
                &RetryPolicy::default(),
                150,
                5,
                8,
                &ps,
                &densities,
                40,
                40,
            );
            assert_eq!(
                farmed.results, reference,
                "seed {chaos_seed}: surviving workers absorb the dead worker's cells"
            );
        }
    }
}
