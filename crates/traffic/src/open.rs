//! Open boundary conditions — the §5 variation "change boundary
//! conditions".
//!
//! Instead of a ring, the road is a segment: cars are *injected* at the
//! left end with probability `alpha` per step (when the entry cell is
//! free) and *removed* when they drive off the right end. This is the
//! classic open-boundary Nagel–Schreckenberg setup whose phase diagram
//! (free flow vs congestion vs maximum-current) depends on the boundary
//! rates.
//!
//! The car population varies over time, so the fixed `t·N + i` draw
//! addressing of the periodic model does not apply; this variant is
//! serial, deterministic per seed, and consumes one draw per present car
//! plus one injection draw per step (documented, and asserted by the
//! draw-count test).

use peachy_prng::{Bernoulli, Lcg64, RandomStream};

/// Open-road configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenRoadConfig {
    /// Number of road cells.
    pub length: usize,
    /// Maximum velocity.
    pub v_max: u32,
    /// Random-deceleration probability.
    pub p: f64,
    /// Injection probability per step (left boundary).
    pub alpha: f64,
    /// Simulation seed.
    pub seed: u64,
}

/// Open-boundary road state.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRoad {
    config: OpenRoadConfig,
    /// Positions ascending; cars[0] is closest to the entrance.
    positions: Vec<usize>,
    velocities: Vec<u32>,
    rng: Lcg64,
    /// Cars that have left the road so far.
    departed: u64,
    /// Cars injected so far.
    injected: u64,
    steps: u64,
}

impl OpenRoad {
    /// An empty road.
    pub fn new(config: &OpenRoadConfig) -> Self {
        assert!(config.length > 0, "road must have cells");
        assert!((0.0..=1.0).contains(&config.p) && (0.0..=1.0).contains(&config.alpha));
        Self {
            config: *config,
            positions: Vec::new(),
            velocities: Vec::new(),
            rng: Lcg64::seed_from(config.seed),
            departed: 0,
            injected: 0,
            steps: 0,
        }
    }

    /// Cars currently on the road (ascending positions).
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Velocities matching [`OpenRoad::positions`].
    pub fn velocities(&self) -> &[u32] {
        &self.velocities
    }

    /// Total cars that have exited at the right boundary.
    pub fn departed(&self) -> u64 {
        self.departed
    }

    /// Total cars injected at the left boundary.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Steps simulated.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Throughput: departures per step so far.
    pub fn throughput(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.departed as f64 / self.steps as f64
        }
    }

    /// One step: injection draw first, then one draw per present car (in
    /// position order), synchronous update, departures at the right edge.
    pub fn step(&mut self) {
        let slow = Bernoulli::new(self.config.p);
        let inject = Bernoulli::new(self.config.alpha);

        // Injection (exactly one draw per step, consumed regardless).
        let want_inject = inject.sample(&mut self.rng);
        if want_inject && self.positions.first() != Some(&0) {
            self.positions.insert(0, 0);
            self.velocities.insert(0, 0);
            self.injected += 1;
        }

        // Synchronous velocity update (one draw per car).
        let n = self.positions.len();
        let mut new_v = vec![0u32; n];
        for i in 0..n {
            let gap = if i + 1 < n {
                self.positions[i + 1] - self.positions[i] - 1
            } else {
                // Last car: open exit, nothing ahead.
                usize::MAX
            };
            let mut v = (self.velocities[i] + 1).min(self.config.v_max);
            v = v.min(gap.min(u32::MAX as usize) as u32);
            if slow.sample(&mut self.rng) && v > 0 {
                v -= 1;
            }
            new_v[i] = v;
        }

        // Move; cars passing the right end depart.
        let mut keep_from = 0;
        for ((vel, pos), &nv) in self
            .velocities
            .iter_mut()
            .zip(&mut self.positions)
            .zip(&new_v)
        {
            *vel = nv;
            *pos += nv as usize;
        }
        while keep_from < self.positions.len()
            && self.positions[self.positions.len() - 1 - keep_from] >= self.config.length
        {
            keep_from += 1;
        }
        for _ in 0..keep_from {
            self.positions.pop();
            self.velocities.pop();
            self.departed += 1;
        }
        self.steps += 1;
    }

    /// Run `steps` steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(alpha: f64) -> OpenRoadConfig {
        OpenRoadConfig {
            length: 200,
            v_max: 5,
            p: 0.15,
            alpha,
            seed: 9,
        }
    }

    #[test]
    fn cars_flow_through() {
        let mut road = OpenRoad::new(&config(0.5));
        road.run(1_000);
        assert!(road.injected() > 100, "injected = {}", road.injected());
        assert!(road.departed() > 100, "departed = {}", road.departed());
        // Conservation: injected = departed + on-road.
        assert_eq!(
            road.injected(),
            road.departed() + road.positions().len() as u64
        );
    }

    #[test]
    fn positions_stay_sorted_and_distinct() {
        let mut road = OpenRoad::new(&config(0.8));
        for _ in 0..500 {
            road.step();
            for w in road.positions().windows(2) {
                assert!(
                    w[0] < w[1],
                    "order/collision violated: {:?}",
                    road.positions()
                );
            }
            for &p in road.positions() {
                assert!(p < 200);
            }
        }
    }

    #[test]
    fn zero_alpha_stays_empty() {
        let mut road = OpenRoad::new(&config(0.0));
        road.run(200);
        assert_eq!(road.injected(), 0);
        assert!(road.positions().is_empty());
        assert_eq!(road.throughput(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = OpenRoad::new(&config(0.4));
        let mut b = OpenRoad::new(&config(0.4));
        a.run(300);
        b.run(300);
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_increases_with_alpha_until_capacity() {
        let run = |alpha: f64| {
            let mut road = OpenRoad::new(&config(alpha));
            road.run(3_000);
            road.throughput()
        };
        let low = run(0.1);
        let high = run(0.5);
        assert!(high > low, "throughput {high} should exceed {low}");
        // Capacity bound: cannot exceed the closed-ring maximum flow (~0.6).
        assert!(high < 0.8);
    }

    #[test]
    fn injection_blocked_when_entry_occupied() {
        // alpha = 1: a car is injected whenever cell 0 is free; the entry
        // constraint keeps positions distinct (checked above) and the
        // injected count lags the step count.
        let mut road = OpenRoad::new(&config(1.0));
        road.run(100);
        assert!(road.injected() < 100);
        assert!(road.injected() > 10);
    }
}
