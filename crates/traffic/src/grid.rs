//! The grid representation: "a value to every point on the circular road".
//!
//! Equivalent to the agent representation but with O(v_max) gap lookups by
//! cell scanning. Kept as a cross-check (the test-suite asserts
//! step-for-step equality with [`AgentRoad`]) and because the assignment
//! discusses the trade-off between the two representations explicitly.

use peachy_prng::{FastForward, Lcg64, RandomStream};

use crate::road::{AgentRoad, RoadConfig};

/// Grid state: cell occupancy plus per-car bookkeeping. Cars are numbered
/// as in [`AgentRoad`], and draws are consumed in car order, so the two
/// representations consume identical streams.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRoad {
    config: RoadConfig,
    /// `cell[x]` is the id of the car occupying cell `x`, if any.
    cells: Vec<Option<u32>>,
    /// Car id → current cell.
    car_cell: Vec<usize>,
    /// Car id → current velocity.
    car_v: Vec<u32>,
}

impl GridRoad {
    /// Same even initial placement as [`AgentRoad::new`].
    pub fn new(config: &RoadConfig) -> Self {
        let agents = AgentRoad::new(config);
        let mut cells = vec![None; config.length];
        let car_cell: Vec<usize> = agents.positions().to_vec();
        for (id, &cell) in car_cell.iter().enumerate() {
            cells[cell] = Some(id as u32);
        }
        Self {
            config: *config,
            cells,
            car_cell,
            car_v: vec![0; config.cars],
        }
    }

    /// Car id → cell mapping.
    pub fn positions(&self) -> &[usize] {
        &self.car_cell
    }

    /// Car id → velocity mapping.
    pub fn velocities(&self) -> &[u32] {
        &self.car_v
    }

    /// Gap ahead of car `id`, by scanning at most `v_max + 1` cells.
    fn gap_ahead(&self, id: usize) -> usize {
        let start = self.car_cell[id];
        for d in 1..=(self.config.v_max as usize + 1) {
            let cell = (start + d) % self.config.length;
            if self.cells[cell].is_some() {
                return d - 1;
            }
        }
        // No car within reach: gap is at least v_max + 1, which the speed
        // rule can never exceed anyway.
        self.config.v_max as usize + 1
    }

    /// One serial step, consuming draw `step_index·N + id` per car.
    pub fn step_serial(&mut self, step_index: u64) {
        let n = self.car_cell.len();
        let mut rng = Lcg64::seed_from(self.config.seed);
        rng.jump(step_index * n as u64);
        // Phase 1: velocities from old state.
        let mut new_v = vec![0u32; n];
        for id in 0..n {
            let mut v = (self.car_v[id] + 1).min(self.config.v_max);
            v = v.min(self.gap_ahead(id) as u32);
            let u = rng.next_f64();
            if u < self.config.p && v > 0 {
                v -= 1;
            }
            new_v[id] = v;
        }
        // Phase 2: move.
        for id in 0..n {
            let from = self.car_cell[id];
            let to = (from + new_v[id] as usize) % self.config.length;
            if to != from {
                debug_assert!(self.cells[to].is_none(), "collision in grid step");
                self.cells[from] = None;
                self.cells[to] = Some(id as u32);
                self.car_cell[id] = to;
            }
            self.car_v[id] = new_v[id];
        }
    }

    /// Run `steps` steps from `start`.
    pub fn run_serial(&mut self, start: u64, steps: u64) {
        for s in 0..steps {
            self.step_serial(start + s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RoadConfig {
        RoadConfig {
            length: 200,
            cars: 60,
            v_max: 5,
            p: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn grid_matches_agent_step_for_step() {
        let config = config();
        let mut grid = GridRoad::new(&config);
        let mut agent = AgentRoad::new(&config);
        for step in 0..200 {
            grid.step_serial(step);
            agent.step_serial(step);
            assert_eq!(grid.positions(), agent.positions(), "step {step}");
            assert_eq!(grid.velocities(), agent.velocities(), "step {step}");
        }
    }

    #[test]
    fn occupancy_stays_consistent() {
        let mut grid = GridRoad::new(&config());
        for step in 0..100 {
            grid.step_serial(step);
            let occupied = grid.cells.iter().filter(|c| c.is_some()).count();
            assert_eq!(occupied, 60, "step {step}");
            for (id, &cell) in grid.car_cell.iter().enumerate() {
                assert_eq!(grid.cells[cell], Some(id as u32));
            }
        }
    }

    #[test]
    fn dense_road_no_movement_without_space() {
        // Completely full road: every gap is 0, nobody moves, ever.
        let config = RoadConfig {
            length: 10,
            cars: 10,
            v_max: 5,
            p: 0.5,
            seed: 7,
        };
        let mut grid = GridRoad::new(&config);
        let initial = grid.positions().to_vec();
        grid.run_serial(0, 50);
        assert_eq!(grid.positions(), &initial[..]);
        assert!(grid.velocities().iter().all(|&v| v == 0));
    }
}
