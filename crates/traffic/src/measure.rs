//! Flow measurements: mean velocity, flow, jam detection, and the
//! fundamental diagram (flow vs. density) sweep.

use crate::road::{AgentRoad, RoadConfig};

/// Aggregate flow statistics over a measured window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// Mean velocity per car per step.
    pub mean_velocity: f64,
    /// Flow `q = ρ·v̄` — cars passing a fixed point per step.
    pub flow: f64,
    /// Density `ρ = N/L`.
    pub density: f64,
    /// Mean fraction of stopped cars per step (jam indicator).
    pub stopped_fraction: f64,
}

impl peachy_cluster::ByteSized for FlowStats {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Run `warmup` steps, then measure `window` steps, returning aggregates.
/// (Serial stepping; the measurement is representation-independent.)
pub fn flow(config: &RoadConfig, warmup: u64, window: u64) -> FlowStats {
    assert!(window > 0, "need a measuring window");
    let mut road = AgentRoad::new(config);
    road.run_serial(0, warmup);
    let mut velocity_sum = 0u64;
    let mut stopped_sum = 0usize;
    for s in 0..window {
        road.step_serial(warmup + s);
        velocity_sum += road.total_velocity();
        stopped_sum += road.stopped();
    }
    let steps = window as f64;
    let n = config.cars as f64;
    let mean_velocity = velocity_sum as f64 / (steps * n);
    let density = config.density();
    FlowStats {
        mean_velocity,
        flow: density * mean_velocity,
        density,
        stopped_fraction: stopped_sum as f64 / (steps * n),
    }
}

/// Mean fraction of stopped cars after warmup — the jam metric used by the
/// "no randomness → no jams" experiment.
pub fn jam_fraction(config: &RoadConfig, warmup: u64, window: u64) -> f64 {
    flow(config, warmup, window).stopped_fraction
}

/// Sweep density and measure steady-state flow: the fundamental diagram of
/// traffic theory (free-flow branch rising, congested branch falling).
pub fn fundamental_diagram(
    length: usize,
    v_max: u32,
    p: f64,
    seed: u64,
    densities: &[f64],
    warmup: u64,
    window: u64,
) -> Vec<FlowStats> {
    densities
        .iter()
        .map(|&rho| {
            let cars = ((length as f64 * rho).round() as usize).clamp(1, length);
            let config = RoadConfig {
                length,
                cars,
                v_max,
                p,
                seed,
            };
            flow(&config, warmup, window)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_flow_speed_without_randomness() {
        // Low density, p = 0: everyone reaches v_max.
        let config = RoadConfig {
            length: 300,
            cars: 20,
            v_max: 5,
            p: 0.0,
            seed: 1,
        };
        let stats = flow(&config, 100, 50);
        assert!((stats.mean_velocity - 5.0).abs() < 1e-12, "{stats:?}");
        assert_eq!(stats.stopped_fraction, 0.0);
    }

    #[test]
    fn randomness_reduces_mean_velocity() {
        let base = RoadConfig {
            length: 300,
            cars: 20,
            v_max: 5,
            p: 0.0,
            seed: 1,
        };
        let noisy = RoadConfig { p: 0.3, ..base };
        let v0 = flow(&base, 100, 100).mean_velocity;
        let v1 = flow(&noisy, 100, 100).mean_velocity;
        assert!(v1 < v0, "random slowdowns must cost speed: {v1} vs {v0}");
    }

    #[test]
    fn jams_require_randomness_at_figure3_density() {
        // The paper's central claim, at its own parameters: with p = 0.13
        // jams occur; with p = 0 they do not.
        let with_noise = RoadConfig::figure3(11);
        let without = RoadConfig {
            p: 0.0,
            ..with_noise
        };
        let jam_noisy = jam_fraction(&with_noise, 300, 200);
        let jam_quiet = jam_fraction(&without, 300, 200);
        assert!(
            jam_noisy > 0.01,
            "expected jams with p = 0.13, got {jam_noisy}"
        );
        assert_eq!(jam_quiet, 0.0, "no jams without randomness");
    }

    #[test]
    fn fundamental_diagram_rises_then_falls() {
        let densities = [0.05, 0.1, 0.15, 0.3, 0.6, 0.9];
        let stats = fundamental_diagram(400, 5, 0.2, 3, &densities, 200, 200);
        assert_eq!(stats.len(), 6);
        // Free-flow branch: flow grows with density at low density.
        assert!(stats[1].flow > stats[0].flow * 1.5);
        // Congested branch: flow at 0.9 density far below the peak.
        let peak = stats.iter().map(|s| s.flow).fold(0.0, f64::max);
        assert!(stats[5].flow < peak * 0.5, "congestion must collapse flow");
    }

    #[test]
    fn flow_is_density_times_velocity() {
        let config = RoadConfig {
            length: 200,
            cars: 50,
            v_max: 5,
            p: 0.1,
            seed: 2,
        };
        let s = flow(&config, 50, 50);
        assert!((s.flow - s.density * s.mean_velocity).abs() < 1e-12);
    }
}
