//! Parallel stepping: the reproducible (fast-forward) scheme and the
//! non-reproducible (per-thread substream) contrast case.

use peachy_cluster::dist::EvenBlocks;
use peachy_prng::{FastForward, Lcg64, RandomStream, StreamSplit};
use rayon::prelude::*;

use crate::road::AgentRoad;

impl AgentRoad {
    /// One parallel step, **bit-identical to [`AgentRoad::step_serial`]**
    /// for any `chunks ≥ 1`.
    ///
    /// Cars are split into `chunks` contiguous blocks. Every block gets a
    /// fresh generator seeded like the serial one and fast-forwarded to
    /// `step_index·N + block_start` — so block `b`'s cars consume exactly
    /// the draws the serial loop would have given them. Blocks run on the
    /// rayon pool; the thread count is irrelevant to the output.
    pub fn step_parallel(&mut self, step_index: u64, chunks: usize) {
        assert!(chunks >= 1, "need at least one chunk");
        let n = self.positions().len();
        let seed = self.config().seed;
        // par_chunks decomposition, from the shared partition vocabulary.
        let chunk_len = EvenBlocks::new(n, chunks).chunk_len();
        // Pre-draw all decelerations in parallel, indexed by car. The
        // synchronous state update itself reads only old state, so it is
        // done with the same shared kernel as the serial path.
        let mut draws = vec![0.0f64; n];
        draws
            .par_chunks_mut(chunk_len)
            .enumerate()
            .for_each(|(b, chunk)| {
                let start = b * chunk_len;
                let mut rng = Lcg64::seed_from(seed);
                rng.jump(step_index * n as u64 + start as u64);
                for d in chunk.iter_mut() {
                    *d = rng.next_f64();
                }
            });
        self.step_with_draws(|i, _| draws[i]);
    }

    /// One parallel step using **per-chunk independent substreams** — the
    /// simple strategy the assignment contrasts: correct as a stochastic
    /// simulation, but "this gives different results when the number of
    /// threads changes". Exposed so benchmarks and tests can demonstrate
    /// exactly that failure.
    pub fn step_parallel_substreams(&mut self, step_index: u64, chunks: usize) {
        assert!(chunks >= 1, "need at least one chunk");
        let n = self.positions().len();
        let seed = self.config().seed;
        let chunk_len = EvenBlocks::new(n, chunks).chunk_len();
        let mut draws = vec![0.0f64; n];
        draws
            .par_chunks_mut(chunk_len)
            .enumerate()
            .for_each(|(b, chunk)| {
                // Each chunk's stream depends on the chunk index — and
                // therefore on how many chunks there are.
                let base = Lcg64::seed_from(seed);
                let mut rng = base.substream(b as u64);
                rng.jump(step_index * chunk_len as u64);
                for d in chunk.iter_mut() {
                    *d = rng.next_f64();
                }
            });
        self.step_with_draws(|i, _| draws[i]);
    }

    /// Run `steps` parallel (reproducible) steps from step index `start`.
    pub fn run_parallel(&mut self, start: u64, steps: u64, chunks: usize) {
        for s in 0..steps {
            self.step_parallel(start + s, chunks);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::road::{AgentRoad, RoadConfig};

    fn config() -> RoadConfig {
        RoadConfig {
            length: 500,
            cars: 120,
            v_max: 5,
            p: 0.25,
            seed: 77,
        }
    }

    #[test]
    fn parallel_equals_serial_for_every_chunking() {
        let mut serial = AgentRoad::new(&config());
        serial.run_serial(0, 100);
        for chunks in [1usize, 2, 3, 5, 8, 120, 999] {
            let mut par = AgentRoad::new(&config());
            par.run_parallel(0, 100, chunks);
            assert_eq!(par, serial, "chunks = {chunks}");
        }
    }

    #[test]
    fn chunk_count_can_change_mid_run() {
        // Reproducibility must hold even when the "thread count" varies
        // between steps — the stream addressing is purely positional.
        let mut serial = AgentRoad::new(&config());
        serial.run_serial(0, 60);
        let mut par = AgentRoad::new(&config());
        for step in 0..60u64 {
            par.step_parallel(step, 1 + (step as usize % 7));
        }
        assert_eq!(par, serial);
    }

    #[test]
    fn substreams_depend_on_chunk_count() {
        // The contrast case: different chunkings → different trajectories.
        let mut a = AgentRoad::new(&config());
        let mut b = AgentRoad::new(&config());
        for step in 0..50 {
            a.step_parallel_substreams(step, 2);
            b.step_parallel_substreams(step, 4);
        }
        assert_ne!(
            a.positions(),
            b.positions(),
            "per-thread seeding should be thread-count-dependent"
        );
    }

    #[test]
    fn substreams_still_a_valid_simulation() {
        // Same chunking → deterministic; cars still never collide.
        let mut a = AgentRoad::new(&config());
        let mut b = AgentRoad::new(&config());
        for step in 0..50 {
            a.step_parallel_substreams(step, 4);
            b.step_parallel_substreams(step, 4);
            let mut seen = std::collections::HashSet::new();
            for &p in a.positions() {
                assert!(seen.insert(p), "collision");
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn figure3_scale_parallel_reproducibility() {
        // The paper's exact Figure-3 configuration.
        let config = RoadConfig::figure3(2023);
        let mut serial = AgentRoad::new(&config);
        serial.run_serial(0, 50);
        let mut par = AgentRoad::new(&config);
        par.run_parallel(0, 50, 8);
        assert_eq!(par, serial);
    }
}
