//! Property tests: the reproducibility contract and physical invariants of
//! the Nagel–Schreckenberg implementation.

use peachy_traffic::{AgentRoad, RoadConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = RoadConfig> {
    (10usize..200, 1u32..6, 0.0f64..0.9, any::<u64>()).prop_flat_map(|(length, v_max, p, seed)| {
        (1usize..=length.min(50)).prop_map(move |cars| RoadConfig {
            length,
            cars,
            v_max,
            p,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The assignment's core requirement: parallel output is bit-identical
    /// to serial for any chunk count.
    #[test]
    fn parallel_bit_identical(config in config_strategy(), chunks in 1usize..12, steps in 1u64..40) {
        let mut serial = AgentRoad::new(&config);
        serial.run_serial(0, steps);
        let mut par = AgentRoad::new(&config);
        par.run_parallel(0, steps, chunks);
        prop_assert_eq!(serial.positions(), par.positions());
        prop_assert_eq!(serial.velocities(), par.velocities());
    }

    /// No two cars ever occupy the same cell, and positions stay on-road.
    #[test]
    fn no_collisions(config in config_strategy(), steps in 1u64..60) {
        let mut road = AgentRoad::new(&config);
        for step in 0..steps {
            road.step_serial(step);
            let mut seen = std::collections::HashSet::new();
            for &p in road.positions() {
                prop_assert!(p < config.length);
                prop_assert!(seen.insert(p));
            }
        }
    }

    /// Velocities never exceed v_max.
    #[test]
    fn speed_limit(config in config_strategy(), steps in 1u64..60) {
        let mut road = AgentRoad::new(&config);
        for step in 0..steps {
            road.step_serial(step);
            for &v in road.velocities() {
                prop_assert!(v <= config.v_max);
            }
        }
    }

    /// The ring's cyclic car order is preserved (no overtaking): gaps+car
    /// cells always tile the road exactly.
    #[test]
    fn ring_conserved(config in config_strategy(), steps in 1u64..40) {
        let mut road = AgentRoad::new(&config);
        for step in 0..steps {
            road.step_serial(step);
            if config.cars > 1 {
                let total: usize = (0..config.cars).map(|i| road.gap_ahead(i) + 1).sum();
                prop_assert_eq!(total, config.length);
            }
        }
    }

    /// Stepping is Markovian in (state, step_index): splitting a run at any
    /// point yields the same trajectory.
    #[test]
    fn run_split_invariance(config in config_strategy(), total in 2u64..40, cut_sel in any::<u64>()) {
        let cut = 1 + cut_sel % (total - 1);
        let mut whole = AgentRoad::new(&config);
        whole.run_serial(0, total);
        let mut split = AgentRoad::new(&config);
        split.run_serial(0, cut);
        split.run_serial(cut, total - cut);
        prop_assert_eq!(whole.positions(), split.positions());
    }

    /// With p = 0 and density low enough, every car eventually cruises at
    /// v_max.
    #[test]
    fn deterministic_free_flow(seed in any::<u64>(), cars in 1usize..10) {
        let length = cars * 10; // density 0.1 << 1/(v_max+1)
        let config = RoadConfig { length, cars, v_max: 5, p: 0.0, seed };
        let mut road = AgentRoad::new(&config);
        road.run_serial(0, 200);
        for &v in road.velocities() {
            prop_assert_eq!(v, 5);
        }
    }
}
