//! # peachy
//!
//! Umbrella crate for the Rust reproduction of **Peachy Parallel
//! Assignments (EduHPC 2023)** — re-exports all six assignment libraries
//! and their substrates, and hosts the cross-crate pipelines:
//!
//! | Paper § | Assignment | Crate |
//! |---------|------------|-------|
//! | §2 | k-Nearest Neighbor on MapReduce | [`knn`] (+ [`mapreduce`], [`cluster`], [`gpu`]) |
//! | §3 | K-means clustering strategy ladder (OpenMP/MPI/CUDA) | [`kmeans`] (+ [`cluster`], [`gpu`]) |
//! | §4 | Data science pipeline | [`dataflow`] (+ [`city`]) |
//! | §5 | Nagel–Schreckenberg traffic model | [`traffic`] (+ [`prng`], [`gpu`]) |
//! | §6 | 1-D heat equation, Chapel-style | [`heat`] |
//! | §7 | Ensemble uncertainty / HPO | [`ensemble`] |
//! | — | Micro-batching request server + elastic sharded tier (extension) | [`serve`] |
//! | — | Declarative `.peachy` scenario layer (extension) | [`spec`] |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure and table.

pub use peachy_cluster as cluster;
pub use peachy_data as data;
pub use peachy_dataflow as dataflow;
pub use peachy_ensemble as ensemble;
pub use peachy_gpu as gpu;
pub use peachy_heat as heat;
pub use peachy_kmeans as kmeans;
pub use peachy_knn as knn;
pub use peachy_mapreduce as mapreduce;
pub use peachy_prng as prng;
pub use peachy_serve as serve;
pub use peachy_spec as spec;
pub use peachy_traffic as traffic;

pub mod city;

/// Common imports for examples and integration tests.
pub mod prelude {
    pub use peachy_cluster::{
        Cluster, Comm, FaultPlan, HashRing, RankError, RetryPolicy, TickBackoff,
    };
    pub use peachy_data::matrix::{LabeledDataset, Matrix};
    pub use peachy_dataflow::{Dataset, KeyedDataset};
    pub use peachy_prng::{FastForward, Lcg64, RandomStream};
    pub use peachy_serve::{ShardConfig, ShardMap, ShardedServer, ShardedService};
    pub use peachy_spec::{RunOptions, Runner, ScenarioReport};
}
