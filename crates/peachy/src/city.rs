//! The §4 exemplar pipeline: arrests per 100 000 citizens per
//! neighbourhood (Figure 2), plus two further analysis questions, built on
//! the [`peachy_dataflow`] engine over the synthetic city of
//! [`peachy_data::geo`].
//!
//! The pipeline mirrors the student submission the paper describes:
//! four CSV datasets (historic arrests, current-year arrests, NTA
//! boundaries, NTA population) are ingested as text, cleaned, spatially
//! joined (point-in-polygon), aggregated per NTA, joined with population,
//! and rendered as a heat map.

use std::sync::Arc;

use peachy_data::geo::{locate, Nta, Point, Polygon, SyntheticCity};
use peachy_dataflow::{
    ByteSized, Dataset, KeyedDataset, OptimizerConfig, ShuffleStats, SpillReader, SpillRow,
};

/// A cleaned arrest event: year plus a validated city coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanArrest {
    /// Calendar year.
    pub year: u32,
    /// Offense category.
    pub offense: String,
    /// Validated location.
    pub at: Point,
}

impl ByteSized for CleanArrest {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<u32>() + self.offense.len() + 2 * std::mem::size_of::<f64>()
    }
}

impl SpillRow for CleanArrest {
    // `Point` belongs to `peachy_data`, which does not know about spilling,
    // so its two coordinates are encoded inline here.
    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.year.spill_encode(out);
        self.offense.spill_encode(out);
        self.at.x.spill_encode(out);
        self.at.y.spill_encode(out);
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        CleanArrest {
            year: u32::spill_decode(r),
            offense: String::spill_decode(r),
            at: Point {
                x: f64::spill_decode(r),
                y: f64::spill_decode(r),
            },
        }
    }
}

/// Result row of the Figure-2 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct NtaRate {
    /// NTA code.
    pub code: String,
    /// Arrests counted in the NTA (current year).
    pub arrests: u64,
    /// Residents.
    pub population: u64,
    /// Arrests per 100 000 citizens.
    pub per_100k: f64,
}

impl ByteSized for NtaRate {
    fn approx_bytes(&self) -> usize {
        self.code.len() + 2 * std::mem::size_of::<u64>() + std::mem::size_of::<f64>()
    }
}

impl SpillRow for NtaRate {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.code.spill_encode(out);
        self.arrests.spill_encode(out);
        self.population.spill_encode(out);
        self.per_100k.spill_encode(out);
    }
    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        NtaRate {
            code: String::spill_decode(r),
            arrests: u64::spill_decode(r),
            population: u64::spill_decode(r),
            per_100k: f64::spill_decode(r),
        }
    }
}

/// Parse one arrests CSV line (`id,year,offense,x,y`); dirty rows (missing
/// fields, unparsable numbers) yield `None` — the cleaning stage.
pub fn parse_arrest(line: &str) -> Option<CleanArrest> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 5 {
        return None;
    }
    let year: u32 = fields[1].trim().parse().ok()?;
    let x: f64 = fields[3].trim().parse().ok()?;
    let y: f64 = fields[4].trim().parse().ok()?;
    if !x.is_finite() || !y.is_finite() {
        return None;
    }
    Some(CleanArrest {
        year,
        offense: fields[2].trim().to_string(),
        at: Point { x, y },
    })
}

/// Parse the boundaries CSV (`code,name,x0,y0,x1,y1,…`) back into NTAs.
pub fn parse_boundaries(text: &str) -> Vec<Nta> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let fields: Vec<&str> = line.split(',').collect();
            assert!(
                fields.len() >= 8 && fields.len().is_multiple_of(2),
                "bad boundary row: {line}"
            );
            let vertices = fields[2..]
                .chunks_exact(2)
                .map(|xy| Point {
                    x: xy[0].trim().parse().expect("boundary x"),
                    y: xy[1].trim().parse().expect("boundary y"),
                })
                .collect();
            Nta {
                code: fields[0].trim().to_string(),
                name: fields[1].trim().to_string(),
                boundary: Polygon::new(vertices),
            }
        })
        .collect()
}

/// Parse the population CSV (`code,population`).
pub fn parse_population(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let (code, pop) = line.split_once(',').expect("population row");
            (
                code.trim().to_string(),
                pop.trim().parse().expect("population count"),
            )
        })
        .collect()
}

/// The ingested pipeline inputs, as raw CSV text (exactly what the course's
/// students download).
pub struct CityTables {
    /// Historic arrests CSV.
    pub arrests_historic: String,
    /// Current-year arrests CSV.
    pub arrests_current: String,
    /// NTA boundary CSV.
    pub boundaries: String,
    /// NTA population CSV.
    pub population: String,
    /// The year the "current" table covers.
    pub current_year: u32,
}

impl CityTables {
    /// Render a generated city into its four CSV tables.
    pub fn from_city(city: &SyntheticCity, current_year: u32) -> Self {
        Self {
            arrests_historic: SyntheticCity::arrests_csv(&city.arrests_historic),
            arrests_current: SyntheticCity::arrests_csv(&city.arrests_current),
            boundaries: city.boundaries_csv(),
            population: city.population_csv(),
            current_year,
        }
    }
}

/// Analysis 1 (Figure 2): arrests per 100 000 citizens per NTA, current
/// year. Returns rows sorted by descending rate, plus shuffle statistics.
pub fn arrests_per_100k(
    tables: &CityTables,
    partitions: usize,
) -> (Vec<NtaRate>, Arc<ShuffleStats>) {
    arrests_per_100k_with(tables, partitions, OptimizerConfig::default())
}

/// [`arrests_per_100k`] under an explicit [`OptimizerConfig`] — the
/// ablation knob for the E18 optimizer experiment (naive vs optimized on
/// the same tables).
pub fn arrests_per_100k_with(
    tables: &CityTables,
    partitions: usize,
    cfg: OptimizerConfig,
) -> (Vec<NtaRate>, Arc<ShuffleStats>) {
    let stats = ShuffleStats::new();
    let ntas = Arc::new(parse_boundaries(&tables.boundaries));

    // Ingest + clean: current-year arrests only, valid coordinates only.
    let current_year = tables.current_year;
    let arrests = Dataset::from_text(&tables.arrests_current, partitions)
        .with_optimizer(cfg)
        .flat_map(|line| parse_arrest(&line))
        .filter(move |a| a.year == current_year);

    // Spatial join: point-in-polygon lookup against the NTA polygons.
    let located = {
        let ntas = Arc::clone(&ntas);
        arrests.flat_map(move |a| locate(&ntas, a.at).map(|idx| ntas[idx].code.clone()))
    };

    // Aggregate: arrests per NTA code.
    let counts = located
        .key_by(|code| code.clone())
        .with_stats(Arc::clone(&stats))
        .map_values(|_| 1u64)
        .reduce_by_key(|a, b| a + b);

    // Join with population and normalize per 100k.
    let population = KeyedDataset::from_dataset(Dataset::from_vec(
        parse_population(&tables.population),
        partitions,
    ));
    let mut rows: Vec<NtaRate> = counts
        .join(&population)
        .collect()
        .into_iter()
        .map(|(code, (arrests, population))| NtaRate {
            code,
            arrests,
            population,
            per_100k: arrests as f64 * 100_000.0 / population as f64,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.per_100k
            .partial_cmp(&a.per_100k)
            .expect("finite")
            .then(a.code.cmp(&b.code))
    });
    (rows, stats)
}

/// Analysis 1, improved plan: same question as [`arrests_per_100k`] but
/// joining population with a **broadcast hash join** — the population
/// table is tiny (one row per NTA), so shipping it to every partition
/// avoids shuffling the aggregated counts at all. The "improve the
/// pipeline" exercise of the assignment, as an executable ablation.
pub fn arrests_per_100k_broadcast(
    tables: &CityTables,
    partitions: usize,
) -> (Vec<NtaRate>, Arc<ShuffleStats>) {
    let stats = ShuffleStats::new();
    let ntas = Arc::new(parse_boundaries(&tables.boundaries));
    let current_year = tables.current_year;
    let arrests = Dataset::from_text(&tables.arrests_current, partitions)
        .flat_map(|line| parse_arrest(&line))
        .filter(move |a| a.year == current_year);
    let located = {
        let ntas = Arc::clone(&ntas);
        arrests.flat_map(move |a| locate(&ntas, a.at).map(|idx| ntas[idx].code.clone()))
    };
    let counts = located
        .key_by(|code| code.clone())
        .with_stats(Arc::clone(&stats))
        .map_values(|_| 1u64)
        .reduce_by_key(|a, b| a + b);
    let population =
        KeyedDataset::from_dataset(Dataset::from_vec(parse_population(&tables.population), 1));
    let mut rows: Vec<NtaRate> = counts
        .broadcast_join(&population)
        .collect()
        .into_iter()
        .map(|(code, (arrests, population))| NtaRate {
            code,
            arrests,
            population,
            per_100k: arrests as f64 * 100_000.0 / population as f64,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.per_100k
            .partial_cmp(&a.per_100k)
            .expect("finite")
            .then(a.code.cmp(&b.code))
    });
    (rows, stats)
}

/// Analysis 2: offense mix per year across both arrest tables — a
/// union + multi-key aggregation.
pub fn offenses_by_year(tables: &CityTables, partitions: usize) -> Vec<((u32, String), u64)> {
    let historic = Dataset::from_text(&tables.arrests_historic, partitions);
    let current = Dataset::from_text(&tables.arrests_current, partitions);
    let mut rows = historic
        .union_with(&current)
        .flat_map(|line| parse_arrest(&line))
        .key_by(|a| (a.year, a.offense.clone()))
        .count_by_key()
        .collect();
    rows.sort();
    rows
}

/// Analysis 3: each NTA's share of current-year arrests relative to its
/// historic yearly average — "which neighbourhoods are getting worse?".
/// Returns `(code, current, historic_per_year)` sorted by growth.
pub fn hotspot_growth(
    tables: &CityTables,
    historic_years: u32,
    partitions: usize,
) -> Vec<(String, u64, f64)> {
    hotspot_growth_with(tables, historic_years, partitions, OptimizerConfig::default()).0
}

/// [`hotspot_growth`] under an explicit [`OptimizerConfig`], with shuffle
/// statistics. Both join sides are `count_by_key` outputs over the same
/// partition count, so the optimizer elides the join shuffle entirely —
/// the flagship elision site of the E18 experiment.
pub fn hotspot_growth_with(
    tables: &CityTables,
    historic_years: u32,
    partitions: usize,
    cfg: OptimizerConfig,
) -> (Vec<(String, u64, f64)>, Arc<ShuffleStats>) {
    let ntas = Arc::new(parse_boundaries(&tables.boundaries));
    let stats = ShuffleStats::new();
    let locate_codes = |text: &str| {
        let ntas = Arc::clone(&ntas);
        Dataset::from_text(text, partitions)
            .with_optimizer(cfg)
            .flat_map(|line| parse_arrest(&line))
            .flat_map(move |a| locate(&ntas, a.at).map(|idx| ntas[idx].code.clone()))
            .key_by(|code| code.clone())
            .with_stats(Arc::clone(&stats))
            .count_by_key()
    };
    let current = locate_codes(&tables.arrests_current);
    let historic = locate_codes(&tables.arrests_historic);
    let mut rows: Vec<(String, u64, f64)> = current
        .left_join(&historic)
        .collect()
        .into_iter()
        .map(|(code, (cur, hist))| {
            let per_year = hist.unwrap_or(0) as f64 / historic_years as f64;
            (code, cur, per_year)
        })
        .collect();
    rows.sort_by(|a, b| {
        let ga = a.1 as f64 / a.2.max(1e-9);
        let gb = b.1 as f64 / b.2.max(1e-9);
        gb.partial_cmp(&ga).expect("finite").then(a.0.cmp(&b.0))
    });
    (rows, stats)
}

/// The optimizer's rendering of the hotspot-growth plan: the naive and
/// optimized lineage side by side, with predicted shuffle bytes — the
/// `explain_plans()` surface of the dataflow engine applied to the §4
/// pipeline. Both join inputs are `count_by_key` outputs over the same
/// partition count, so the optimized plan elides the join boundary.
pub fn hotspot_plan(tables: &CityTables, partitions: usize) -> peachy_dataflow::PlanReport {
    let ntas = Arc::new(parse_boundaries(&tables.boundaries));
    let locate_codes = |text: &str| {
        let ntas = Arc::clone(&ntas);
        Dataset::from_text(text, partitions)
            .flat_map(|line| parse_arrest(&line))
            .flat_map(move |a| locate(&ntas, a.at).map(|idx| ntas[idx].code.clone()))
            .key_by(|code| code.clone())
            .count_by_key()
    };
    let current = locate_codes(&tables.arrests_current);
    let historic = locate_codes(&tables.arrests_historic);
    current.left_join(&historic).explain_plans()
}

/// Render the Figure-2 heat map as ASCII: one cell per NTA in grid layout,
/// shaded by arrests-per-100k quintile.
pub fn heat_map_ascii(rates: &[NtaRate], grid_w: usize, grid_h: usize) -> String {
    const SHADES: [char; 5] = ['.', ':', 'o', 'O', '@'];
    let mut by_code: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    for r in rates {
        by_code.insert(&r.code, r.per_100k);
    }
    let max = rates
        .iter()
        .map(|r| r.per_100k)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    for gy in (0..grid_h).rev() {
        for gx in 0..grid_w {
            let code = format!("NTA{:03}", gy * grid_w + gx);
            let shade = match by_code.get(code.as_str()) {
                Some(&rate) => {
                    let level = ((rate / max) * (SHADES.len() as f64 - 1.0)).round() as usize;
                    SHADES[level.min(SHADES.len() - 1)]
                }
                None => ' ',
            };
            out.push(shade);
            out.push(shade); // double width for roughly square cells
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::geo::CityConfig;

    fn small_city() -> (SyntheticCity, CityTables) {
        let config = CityConfig {
            grid_w: 4,
            grid_h: 4,
            arrests: 8_000,
            ..CityConfig::default()
        };
        let city = SyntheticCity::generate(config, 99);
        let tables = CityTables::from_city(&city, config.current_year);
        (city, tables)
    }

    #[test]
    fn parse_arrest_cleans_dirty_rows() {
        assert!(parse_arrest("1,2021,fraud,1.5,2.5").is_some());
        assert!(parse_arrest("1,2021,fraud,,2.5").is_none(), "missing x");
        assert!(parse_arrest("1,2021,fraud,1.5,").is_none(), "missing y");
        assert!(parse_arrest("1,zzz,fraud,1.5,2.5").is_none(), "bad year");
        assert!(parse_arrest("1,2021,fraud,NaN,2.5").is_none(), "NaN coord");
        assert!(parse_arrest("not a csv row").is_none());
    }

    #[test]
    fn boundaries_roundtrip() {
        let (city, tables) = small_city();
        let parsed = parse_boundaries(&tables.boundaries);
        assert_eq!(parsed, city.ntas);
    }

    #[test]
    fn population_roundtrip() {
        let (city, tables) = small_city();
        assert_eq!(parse_population(&tables.population), city.population);
    }

    #[test]
    fn figure2_counts_match_ground_truth() {
        let (city, tables) = small_city();
        let (rows, _) = arrests_per_100k(&tables, 4);
        // Every NTA with ≥1 arrest appears, with exactly the ground-truth count.
        for (idx, nta) in city.ntas.iter().enumerate() {
            let truth = city.truth_current_counts[idx];
            let found = rows.iter().find(|r| r.code == nta.code);
            match found {
                Some(r) => {
                    assert_eq!(r.arrests, truth, "NTA {}", nta.code);
                    let pop = city.population[idx].1;
                    assert_eq!(r.population, pop);
                    assert!((r.per_100k - truth as f64 * 100_000.0 / pop as f64).abs() < 1e-9);
                }
                None => assert_eq!(truth, 0, "NTA {} missing from output", nta.code),
            }
        }
    }

    #[test]
    fn figure2_sorted_by_rate() {
        let (_, tables) = small_city();
        let (rows, _) = arrests_per_100k(&tables, 4);
        for w in rows.windows(2) {
            assert!(w[0].per_100k >= w[1].per_100k);
        }
    }

    #[test]
    fn figure2_partition_count_does_not_change_answer() {
        let (_, tables) = small_city();
        let (a, _) = arrests_per_100k(&tables, 1);
        let (b, _) = arrests_per_100k(&tables, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn broadcast_plan_same_answer_fewer_shuffles() {
        let (_, tables) = small_city();
        let (shuffle_rows, shuffle_stats) = arrests_per_100k(&tables, 4);
        let (bcast_rows, bcast_stats) = arrests_per_100k_broadcast(&tables, 4);
        assert_eq!(shuffle_rows, bcast_rows, "both plans must agree");
        // The shuffle plan pays for the join; the broadcast plan only pays
        // for the count aggregation.
        assert!(
            bcast_stats.records() <= shuffle_stats.records(),
            "broadcast {} vs shuffle {}",
            bcast_stats.records(),
            shuffle_stats.records()
        );
    }

    #[test]
    fn offense_mix_covers_all_years() {
        let (_, tables) = small_city();
        let rows = offenses_by_year(&tables, 4);
        let years: std::collections::HashSet<u32> = rows.iter().map(|((y, _), _)| *y).collect();
        assert!(years.contains(&2021), "current year present");
        assert!(years.len() >= 4, "historic years present: {years:?}");
        // Total counts match the number of clean arrests.
        let total: u64 = rows.iter().map(|(_, c)| *c).sum();
        let clean = Dataset::from_text(&tables.arrests_historic, 1)
            .flat_map(|l| parse_arrest(&l))
            .count()
            + Dataset::from_text(&tables.arrests_current, 1)
                .flat_map(|l| parse_arrest(&l))
                .count();
        assert_eq!(total as usize, clean);
    }

    #[test]
    fn hotspot_growth_has_all_active_ntas() {
        let (_, tables) = small_city();
        let rows = hotspot_growth(&tables, 4, 4);
        assert!(!rows.is_empty());
        for (_, cur, _) in &rows {
            assert!(*cur > 0);
        }
    }

    #[test]
    fn heat_map_dimensions() {
        let (_, tables) = small_city();
        let (rows, _) = arrests_per_100k(&tables, 2);
        let art = heat_map_ascii(&rows, 4, 4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.chars().count() == 8));
        // The hottest NTA renders as '@'.
        assert!(art.contains('@'));
    }
}
